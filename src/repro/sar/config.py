"""Radar system configuration.

Bundles the waveform, collection geometry and processing grids that
every algorithm in :mod:`repro.sar` shares.  Two factory presets are
provided:

- :meth:`RadarConfig.paper` -- the paper's stimulus scale: 1024 pulses,
  1001 range bins, merge base 2, ten FFBP iterations.
- :meth:`RadarConfig.small` -- a reduced geometry for unit tests.

Signal convention
-----------------
Pulse-compressed data *retains the carrier in the range variable*: a
point target at range ``R`` contributes
``env(r - R) * exp(j * 2 k_c * (r - R))`` to the range profile.  This is
the ultra-wideband low-frequency SAR convention (the CARABAS lineage of
paper refs. [5], [6]) and is what allows both GBP and FFBP to focus by
*plain summation* -- exactly the element combining of paper eq. 5, with
no explicit phase multiplications.  The price is that range sampling
must be fine relative to the carrier wavelength; the presets use
``dr = lambda_c / 8``, which makes nearest-neighbour interpolation
(the paper's choice) noticeably noisy -- reproducing the FFBP-vs-GBP
quality gap of paper Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.geometry.trajectory import LinearTrajectory
from repro.signal.chirp import C0, LfmChirp


@dataclass(frozen=True)
class RadarConfig:
    """Waveform, geometry and grid parameters for one collection.

    Parameters
    ----------
    chirp:
        Transmitted waveform (defines carrier and bandwidth).
    n_pulses:
        Pulses in the synthetic aperture; must be a power of the FFBP
        merge base.
    spacing:
        Along-track pulse spacing in metres.
    r0:
        Range of the first range bin, metres.
    dr:
        Range-bin spacing, metres.
    n_ranges:
        Number of range bins per pulse.
    theta_center, theta_span:
        Centre and full width (radians) of the polar image's angular
        window, measured from the flight axis; broadside is ``pi/2``.
    merge_base:
        FFBP merge base (paper: 2).
    """

    chirp: LfmChirp
    n_pulses: int = 1024
    spacing: float = 1.0
    r0: float = 2000.0
    dr: float = 0.75
    n_ranges: int = 1001
    theta_center: float = np.pi / 2
    theta_span: float = 0.3
    merge_base: int = 2

    def __post_init__(self) -> None:
        if self.n_pulses < 1:
            raise ValueError("n_pulses must be positive")
        if self.spacing <= 0 or self.dr <= 0 or self.n_ranges < 1:
            raise ValueError("spacing, dr and n_ranges must be positive")
        if not (0 < self.theta_span < np.pi):
            raise ValueError(f"theta_span must be in (0, pi), got {self.theta_span}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def wavelength(self) -> float:
        return self.chirp.wavelength

    @property
    def wavenumber(self) -> float:
        """Carrier wavenumber ``k_c = 2 pi / lambda``."""
        return 2.0 * np.pi / self.wavelength

    @property
    def range_resolution(self) -> float:
        return self.chirp.range_resolution

    @property
    def aperture_length(self) -> float:
        return self.n_pulses * self.spacing

    @property
    def r_max(self) -> float:
        return self.r0 + (self.n_ranges - 1) * self.dr

    def range_axis(self) -> np.ndarray:
        """Range-bin centres ``r_j = r0 + j * dr``."""
        return self.r0 + self.dr * np.arange(self.n_ranges)

    def theta_axis(self, n_beams: int | None = None) -> np.ndarray:
        """Beam centres for an ``n_beams``-beam polar grid.

        Beams are uniform over ``[theta_center - span/2,
        theta_center + span/2]`` with half-bin edge offsets, so grids of
        different beam counts nest consistently across FFBP stages.
        """
        if n_beams is None:
            n_beams = self.n_pulses
        if n_beams < 1:
            raise ValueError("n_beams must be positive")
        dtheta = self.theta_span / n_beams
        k = np.arange(n_beams)
        return self.theta_min + (k + 0.5) * dtheta

    @property
    def theta_min(self) -> float:
        return self.theta_center - 0.5 * self.theta_span

    @property
    def theta_max(self) -> float:
        return self.theta_center + 0.5 * self.theta_span

    def trajectory(self) -> LinearTrajectory:
        """The nominal (assumed) processing trajectory."""
        return LinearTrajectory(spacing=self.spacing)

    def aperture_center(self) -> np.ndarray:
        """Phase centre of the full aperture on the nominal track."""
        return self.trajectory().center(self.n_pulses)

    def scene_center(self) -> np.ndarray:
        """Ground point at the middle of the polar image window."""
        c = self.aperture_center()
        r_mid = 0.5 * (self.r0 + self.r_max)
        return c + r_mid * np.array(
            [np.cos(self.theta_center), np.sin(self.theta_center)]
        )

    def data_bytes(self, dtype_bytes: int = 8) -> int:
        """Size of one full data set (complex64 = 8 bytes/pixel)."""
        return self.n_pulses * self.n_ranges * dtype_bytes

    def with_(self, **changes) -> "RadarConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "RadarConfig":
        """The paper's stimulus scale (1024 pulses x 1001 range bins).

        Waveform parameters are chosen in the UWB VHF regime so that
        ``dr = lambda/8`` and the range resolution spans several bins,
        matching the qualitative behaviour of the paper's data.
        """
        chirp = LfmChirp(
            center_frequency=50e6,
            bandwidth=25e6,
            duration=4e-6,
            sample_rate=C0 / (2 * 0.75),  # one complex sample per bin
        )
        return cls(chirp=chirp, n_pulses=1024, n_ranges=1001, dr=0.75)

    @classmethod
    def small(cls, n_pulses: int = 64, n_ranges: int = 65) -> "RadarConfig":
        """Reduced geometry for fast tests; same waveform regime."""
        chirp = LfmChirp(
            center_frequency=50e6,
            bandwidth=25e6,
            duration=4e-6,
            sample_rate=C0 / (2 * 0.75),
        )
        return cls(
            chirp=chirp,
            n_pulses=n_pulses,
            n_ranges=n_ranges,
            dr=0.75,
            r0=2000.0,
            spacing=4.0,
            theta_span=0.2,
        )
