"""Output image grids and polar/Cartesian resampling.

FFBP naturally produces a *polar* image: amplitude as a function of
(range, angle) about the full-aperture phase centre -- the final stage's
1024-beam x 1001-range grid is the "1024x1001 pixel image" of the
paper.  GBP can target any pixel positions.  For display and
quality comparison we also support Cartesian ground grids and
polar-to-Cartesian resampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PolarGrid:
    """A polar pixel grid about a phase centre on the flight track.

    Attributes
    ----------
    center:
        ``(2,)`` phase-centre ground position (metres).
    r:
        ``(n_ranges,)`` range-bin centres (metres).
    theta:
        ``(n_beams,)`` beam centres (radians from the flight axis).
    """

    center: np.ndarray
    r: np.ndarray
    theta: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "center", np.asarray(self.center, dtype=np.float64))
        object.__setattr__(self, "r", np.asarray(self.r, dtype=np.float64))
        object.__setattr__(self, "theta", np.asarray(self.theta, dtype=np.float64))
        if self.center.shape != (2,):
            raise ValueError("center must be a 2-vector")

    @property
    def shape(self) -> tuple[int, int]:
        """Image shape ``(n_beams, n_ranges)``."""
        return (self.theta.size, self.r.size)

    def pixel_positions(self) -> np.ndarray:
        """Ground positions of every pixel, shape ``(n_beams, n_ranges, 2)``."""
        r = self.r[None, :]
        th = self.theta[:, None]
        x = self.center[0] + r * np.cos(th)
        y = self.center[1] + r * np.sin(th)
        return np.stack([x, y], axis=-1)

    def locate(self, position: np.ndarray) -> tuple[float, float]:
        """Fractional (beam, range) indices of a ground position."""
        d = np.asarray(position, dtype=np.float64) - self.center
        rng = float(np.hypot(d[0], d[1]))
        ang = float(np.arctan2(d[1], d[0]))
        fb = (ang - self.theta[0]) / (self.theta[1] - self.theta[0]) if self.theta.size > 1 else 0.0
        fr = (rng - self.r[0]) / (self.r[1] - self.r[0]) if self.r.size > 1 else 0.0
        return fb, fr


@dataclass(frozen=True)
class CartesianGrid:
    """A rectilinear ground grid.

    Attributes
    ----------
    x:
        ``(nx,)`` along-track pixel centres (metres).
    y:
        ``(ny,)`` cross-track pixel centres (metres).
    """

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", np.asarray(self.x, dtype=np.float64))
        object.__setattr__(self, "y", np.asarray(self.y, dtype=np.float64))

    @classmethod
    def centered(
        cls, center: np.ndarray, width: float, height: float, nx: int, ny: int
    ) -> "CartesianGrid":
        cx, cy = np.asarray(center, dtype=np.float64)
        return cls(
            x=cx + np.linspace(-width / 2, width / 2, nx),
            y=cy + np.linspace(-height / 2, height / 2, ny),
        )

    @property
    def shape(self) -> tuple[int, int]:
        """Image shape ``(ny, nx)`` -- row per cross-track line."""
        return (self.y.size, self.x.size)

    def pixel_positions(self) -> np.ndarray:
        """Ground positions of every pixel, shape ``(ny, nx, 2)``."""
        xx, yy = np.meshgrid(self.x, self.y)
        return np.stack([xx, yy], axis=-1)


@dataclass(frozen=True)
class PolarImage:
    """Complex image on a :class:`PolarGrid` (beam-major layout)."""

    grid: PolarGrid
    data: np.ndarray

    def __post_init__(self) -> None:
        data = np.asarray(self.data)
        if data.shape != self.grid.shape:
            raise ValueError(
                f"data shape {data.shape} != grid shape {self.grid.shape}"
            )
        object.__setattr__(self, "data", data)

    @property
    def magnitude(self) -> np.ndarray:
        return np.abs(self.data)

    def db(self, floor_db: float = -80.0) -> np.ndarray:
        """Magnitude in dB relative to the image peak."""
        mag = self.magnitude
        peak = mag.max()
        if peak == 0:
            return np.full(mag.shape, floor_db)
        with np.errstate(divide="ignore"):
            out = 20.0 * np.log10(mag / peak)
        return np.maximum(out, floor_db)

    def peak_pixel(self) -> tuple[int, int]:
        """(beam, range) indices of the magnitude peak."""
        flat = int(np.argmax(self.magnitude))
        return np.unravel_index(flat, self.data.shape)  # type: ignore[return-value]

    def to_cartesian(self, grid: CartesianGrid) -> "CartesianImage":
        """Bilinear resampling onto a Cartesian ground grid.

        Pixels outside the polar footprint are set to zero.
        """
        pos = grid.pixel_positions()
        d = pos - self.grid.center
        rng = np.hypot(d[..., 0], d[..., 1])
        ang = np.arctan2(d[..., 1], d[..., 0])
        r_ax, th_ax = self.grid.r, self.grid.theta
        fr = (rng - r_ax[0]) / (r_ax[1] - r_ax[0])
        fb = (ang - th_ax[0]) / (th_ax[1] - th_ax[0])
        nb, nr = self.data.shape
        valid = (fr >= 0) & (fr <= nr - 1) & (fb >= 0) & (fb <= nb - 1)
        ib = np.clip(np.floor(fb).astype(np.int64), 0, nb - 2)
        ir = np.clip(np.floor(fr).astype(np.int64), 0, nr - 2)
        tb = np.clip(fb - ib, 0.0, 1.0)
        tr = np.clip(fr - ir, 0.0, 1.0)
        d00 = self.data[ib, ir]
        d01 = self.data[ib, ir + 1]
        d10 = self.data[ib + 1, ir]
        d11 = self.data[ib + 1, ir + 1]
        out = (
            d00 * (1 - tb) * (1 - tr)
            + d01 * (1 - tb) * tr
            + d10 * tb * (1 - tr)
            + d11 * tb * tr
        )
        out = np.where(valid, out, 0)
        return CartesianImage(grid=grid, data=out)


@dataclass(frozen=True)
class CartesianImage:
    """Complex image on a :class:`CartesianGrid`."""

    grid: CartesianGrid
    data: np.ndarray

    def __post_init__(self) -> None:
        data = np.asarray(self.data)
        if data.shape != self.grid.shape:
            raise ValueError(
                f"data shape {data.shape} != grid shape {self.grid.shape}"
            )
        object.__setattr__(self, "data", data)

    @property
    def magnitude(self) -> np.ndarray:
        return np.abs(self.data)

    def db(self, floor_db: float = -80.0) -> np.ndarray:
        mag = self.magnitude
        peak = mag.max()
        if peak == 0:
            return np.full(mag.shape, floor_db)
        with np.errstate(divide="ignore"):
            out = 20.0 * np.log10(mag / peak)
        return np.maximum(out, floor_db)

    def peak_pixel(self) -> tuple[int, int]:
        flat = int(np.argmax(self.magnitude))
        return np.unravel_index(flat, self.data.shape)  # type: ignore[return-value]
