"""Autofocus criterion calculation and flight-path compensation search.

Paper Section II-A: when GPS positioning is insufficient, the flight
path compensation applied before each FFBP merge is found from the image
data itself.  With merge base 2, several candidate compensations are
tested; for each candidate the two contributing subaperture images are
resampled along tilted paths (cubic interpolation in the range
direction, then the beam direction -- Neville's algorithm, paper ref.
[16]) and scored by the intensity-correlation focus criterion
(paper eq. 6).  The candidate that maximises the criterion wins.

The images compared are only small subimages (the paper uses two 6x6
pixel blocks), over which a path error is well approximated by a linear
shift of the data set -- hence the candidate space is (shift, tilt)
pairs in the range and beam directions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.apertures import SubapertureTree
from repro.sar.config import RadarConfig
from repro.sar.ffbp import FfbpOptions, combine_children, initial_stage, stage_maps
from repro.signal.correlation import focus_criterion
from repro.signal.interpolation import cubic_neville_rows

BLOCK_SHAPE = (6, 6)
"""The paper's autofocus subimage size (beam x range pixels)."""


@dataclass(frozen=True)
class Compensation:
    """One candidate flight-path compensation, as a data-set shift.

    Shifts and tilts are in fractional pixels; ``range_tilt`` is the
    per-beam-row slope of the range shift (the "tilted path"), and
    symmetrically for ``beam_tilt``.
    """

    range_shift: float = 0.0
    range_tilt: float = 0.0
    beam_shift: float = 0.0
    beam_tilt: float = 0.0

    def scaled(self, factor: float) -> "Compensation":
        return Compensation(
            self.range_shift * factor,
            self.range_tilt * factor,
            self.beam_shift * factor,
            self.beam_tilt * factor,
        )


def resample_range(block: np.ndarray, shift: float, tilt: float = 0.0) -> np.ndarray:
    """Cubic resampling of each beam row along a tilted range path.

    Row ``i`` of the output samples row ``i`` of the input at fractional
    range positions ``j + shift + tilt * (i - (nb-1)/2)``.
    """
    block = np.asarray(block)
    nb, nr = block.shape
    j = np.arange(nr, dtype=np.float64)
    rows = np.arange(nb, dtype=np.float64)[:, None] - (nb - 1) / 2.0
    positions = j + shift + tilt * rows  # (nb, nr) tilted paths
    return cubic_neville_rows(block, positions)


def resample_beam(block: np.ndarray, shift: float, tilt: float = 0.0) -> np.ndarray:
    """Cubic resampling of each range column along a tilted beam path."""
    return resample_range(np.asarray(block).T, shift, tilt).T


def apply_compensation(block: np.ndarray, comp: Compensation) -> np.ndarray:
    """Resample a block by a candidate compensation.

    Range direction first, then beam direction -- the stage order of
    the paper's dataflow diagram (Fig. 8).
    """
    out = resample_range(block, comp.range_shift, comp.range_tilt)
    out = resample_beam(out, comp.beam_shift, comp.beam_tilt)
    return out


def criterion_for(
    f_minus: np.ndarray,
    f_plus: np.ndarray,
    comp: Compensation,
    normalized: bool = True,
) -> float:
    """Focus criterion for one candidate compensation.

    The candidate is applied symmetrically: ``f_plus`` is shifted by
    half the compensation and ``f_minus`` by the opposite half, which
    keeps the comparison unbiased for shifts of either sign.

    ``normalized=True`` (the search default) scores with the
    energy-normalised form of eq. 6, which is invariant to the
    energy-concentration side effect of resampling; ``False`` gives the
    paper's raw sum.
    """
    g_minus = apply_compensation(np.asarray(f_minus), comp.scaled(-0.5))
    g_plus = apply_compensation(np.asarray(f_plus), comp.scaled(+0.5))
    if normalized:
        from repro.signal.correlation import normalized_focus_criterion

        return normalized_focus_criterion(g_minus, g_plus)
    return focus_criterion(g_minus, g_plus)


@dataclass(frozen=True)
class AutofocusResult:
    """Outcome of a compensation search."""

    best: Compensation
    best_criterion: float
    candidates: tuple[Compensation, ...]
    criteria: np.ndarray = field(repr=False)

    @property
    def best_index(self) -> int:
        return int(np.argmax(self.criteria))

    def zero_criterion(self) -> float:
        """Criterion of the candidate nearest to no compensation."""
        norms = [
            abs(c.range_shift) + abs(c.range_tilt) + abs(c.beam_shift) + abs(c.beam_tilt)
            for c in self.candidates
        ]
        return float(self.criteria[int(np.argmin(norms))])

    def gain(self) -> float:
        """Relative criterion improvement of the winner over zero."""
        zero = self.zero_criterion()
        if zero <= 0:
            return float("inf") if self.best_criterion > 0 else 0.0
        return self.best_criterion / zero - 1.0


def default_candidates(
    max_range_shift: float = 2.0, n: int = 9
) -> tuple[Compensation, ...]:
    """A 1-D sweep of range shifts, the dominant path-error effect.

    A cross-track deviation ``dy`` of the platform changes the target
    range by ``~ dy * sin(theta) ~ dy`` near broadside, i.e. a range
    shift of the data -- so the default search is over range shifts.
    """
    if n < 1:
        raise ValueError("need at least one candidate")
    shifts = np.linspace(-max_range_shift, max_range_shift, n)
    return tuple(Compensation(range_shift=float(s)) for s in shifts)


def grid_candidates(
    range_shifts: int = 6,
    range_tilts: int = 6,
    beam_shifts: int = 6,
    max_shift: float = 2.0,
    max_tilt: float = 0.5,
) -> tuple[Compensation, ...]:
    """A full 3-D compensation grid over (shift, tilt, beam shift).

    The default 6x6x6 = 216 candidates is the workload the timing
    models assume (see
    :class:`repro.kernels.opcounts.AutofocusWorkload`): the "several
    different flight path compensations ... tested before a merge",
    covering both the constant and the linearly varying (tilted-path)
    parts of the local path error.
    """
    if min(range_shifts, range_tilts, beam_shifts) < 1:
        raise ValueError("every grid dimension needs at least one point")

    def axis(n: int, extent: float) -> np.ndarray:
        return np.linspace(-extent, extent, n) if n > 1 else np.zeros(1)

    out = []
    for rs in axis(range_shifts, max_shift):
        for rt in axis(range_tilts, max_tilt):
            for bs in axis(beam_shifts, max_shift):
                out.append(
                    Compensation(
                        range_shift=float(rs),
                        range_tilt=float(rt),
                        beam_shift=float(bs),
                    )
                )
    return tuple(out)


def autofocus_search(
    f_minus: np.ndarray,
    f_plus: np.ndarray,
    candidates: tuple[Compensation, ...] | None = None,
) -> AutofocusResult:
    """Evaluate the criterion for every candidate and pick the best."""
    cands = candidates if candidates is not None else default_candidates()
    crit = np.array([criterion_for(f_minus, f_plus, c) for c in cands])
    best = int(np.argmax(crit))
    return AutofocusResult(
        best=cands[best],
        best_criterion=float(crit[best]),
        candidates=tuple(cands),
        criteria=crit,
    )


def brightest_block(
    image: np.ndarray, block_shape: tuple[int, int] = BLOCK_SHAPE
) -> tuple[int, int]:
    """Top-left corner of the brightest ``block_shape`` window.

    Autofocus correlates only small subimages around strong scatterers;
    this picks the window with maximum total intensity (via a summed
    area table, so it is exact, not a heuristic scan).
    """
    mag2 = np.abs(np.asarray(image)) ** 2
    nb, nr = mag2.shape
    hb, hr = block_shape
    if nb < hb or nr < hr:
        raise ValueError(f"image {mag2.shape} smaller than block {block_shape}")
    sat = np.zeros((nb + 1, nr + 1))
    sat[1:, 1:] = mag2.cumsum(axis=0).cumsum(axis=1)
    windows = (
        sat[hb:, hr:] - sat[:-hb, hr:] - sat[hb:, :-hr] + sat[:-hb, :-hr]
    )
    i, j = np.unravel_index(int(np.argmax(windows)), windows.shape)
    return int(i), int(j)


def extract_block(
    image: np.ndarray,
    corner: tuple[int, int],
    block_shape: tuple[int, int] = BLOCK_SHAPE,
) -> np.ndarray:
    """Copy one block out of an image."""
    i, j = corner
    hb, hr = block_shape
    return np.array(image[i : i + hb, j : j + hr])


def top_blocks(
    image: np.ndarray,
    n_blocks: int,
    block_shape: tuple[int, int] = BLOCK_SHAPE,
) -> list[tuple[int, int]]:
    """Corners of the ``n_blocks`` brightest non-overlapping windows.

    Greedy selection on the summed-area table: take the brightest
    window, suppress everything overlapping it, repeat.  Supports the
    multi-block criterion (the paper takes its blocks "from the area of
    interest"; several scatterers give a better-conditioned search than
    one).
    """
    if n_blocks < 1:
        raise ValueError("need at least one block")
    mag2 = np.abs(np.asarray(image)) ** 2
    nb, nr = mag2.shape
    hb, hr = block_shape
    if nb < hb or nr < hr:
        raise ValueError(f"image {mag2.shape} smaller than block {block_shape}")
    sat = np.zeros((nb + 1, nr + 1))
    sat[1:, 1:] = mag2.cumsum(axis=0).cumsum(axis=1)
    windows = (
        sat[hb:, hr:] - sat[:-hb, hr:] - sat[hb:, :-hr] + sat[:-hb, :-hr]
    ).copy()
    corners: list[tuple[int, int]] = []
    for _ in range(n_blocks):
        if not np.isfinite(windows.max()) or windows.max() <= 0:
            break
        i, j = np.unravel_index(int(np.argmax(windows)), windows.shape)
        corners.append((int(i), int(j)))
        # Suppress every candidate corner overlapping this window.
        i0 = max(0, i - hb + 1)
        j0 = max(0, j - hr + 1)
        windows[i0 : i + hb, j0 : j + hr] = -np.inf
    return corners


def autofocus_search_multi(
    blocks_minus: list[np.ndarray],
    blocks_plus: list[np.ndarray],
    candidates: tuple[Compensation, ...] | None = None,
) -> AutofocusResult:
    """Candidate search scored over several block pairs jointly.

    Each candidate's score is the sum of its criteria over all block
    pairs, so a shift must help *consistently* to win -- better
    conditioned than a single block when scatterers are weak or noisy.
    """
    if len(blocks_minus) != len(blocks_plus) or not blocks_minus:
        raise ValueError("need equal-length, non-empty block lists")
    cands = candidates if candidates is not None else default_candidates()
    crit = np.zeros(len(cands))
    for bm, bp in zip(blocks_minus, blocks_plus):
        crit += np.array([criterion_for(bm, bp, c) for c in cands])
    best = int(np.argmax(crit))
    return AutofocusResult(
        best=cands[best],
        best_criterion=float(crit[best]),
        candidates=tuple(cands),
        criteria=crit,
    )


def estimate_compensation(
    child_minus: np.ndarray,
    child_plus: np.ndarray,
    candidates: tuple[Compensation, ...] | None = None,
    block_shape: tuple[int, int] = BLOCK_SHAPE,
    n_blocks: int = 1,
) -> AutofocusResult:
    """Estimate the compensation between two child subaperture images.

    Finds the brightest block(s) in the combined intensity and runs the
    candidate search on those block pairs -- the "two 6x6 blocks of
    image pixels from the area of interest of the contributing image"
    of paper Section V-C (``n_blocks > 1`` scores several scatterers
    jointly for robustness).
    """
    child_minus = np.asarray(child_minus)
    child_plus = np.asarray(child_plus)
    if child_minus.shape != child_plus.shape:
        raise ValueError("child images must have equal shapes")
    combined = np.abs(child_minus) + np.abs(child_plus)
    if n_blocks == 1:
        corner = brightest_block(combined, block_shape)
        f_minus = extract_block(child_minus, corner, block_shape)
        f_plus = extract_block(child_plus, corner, block_shape)
        return autofocus_search(f_minus, f_plus, candidates)
    corners = top_blocks(combined, n_blocks, block_shape)
    return autofocus_search_multi(
        [extract_block(child_minus, c, block_shape) for c in corners],
        [extract_block(child_plus, c, block_shape) for c in corners],
        candidates,
    )


def shift_stage_data(stage: np.ndarray, comp: Compensation) -> np.ndarray:
    """Apply a compensation to a whole subaperture data array.

    Resamples every beam row of every subaperture in the
    ``(n_sub, beams, ranges)`` stage array by the compensation's range
    component (the beam component is meaningful only within an image
    block, so whole-data compensation uses range only -- consistent
    with the path-error-as-range-shift model).
    """
    if comp.range_shift == 0.0 and comp.range_tilt == 0.0:
        return stage
    n_sub, nb, nr = stage.shape
    flat = stage.reshape(n_sub * nb, nr)
    j = np.arange(nr, dtype=np.float64)
    out = cubic_neville_rows(flat, j + comp.range_shift).astype(stage.dtype)
    return out.reshape(stage.shape)


def ffbp_with_autofocus(
    data: np.ndarray,
    cfg: RadarConfig,
    options: FfbpOptions | None = None,
    candidates: tuple[Compensation, ...] | None = None,
    start_level: int = 1,
    min_beams: int = 8,
    min_gain: float = 0.02,
) -> tuple[np.ndarray, list[AutofocusResult]]:
    """FFBP with an autofocus compensation search before each merge.

    For each merge (from ``start_level`` on, once child images have at
    least ``min_beams`` beams so a 6x6 block exists), estimate the
    relative compensation between the two children of the *brightest*
    parent, then apply half of it to each child group globally before
    combining.  Returns the final stage array and the per-level search
    results.

    This follows the paper's scheme -- criterion calculations before
    every merge, merge base 2 -- in its simplest usable form; the
    point of the case study is the criterion calculation cost, which is
    what the machine kernels meter.
    """
    opts = options or FfbpOptions()
    tree = SubapertureTree(cfg.n_pulses, cfg.spacing, cfg.merge_base)
    stage = initial_stage(data, cfg, opts)
    results: list[AutofocusResult] = []
    keep = opts.needs_geometry
    for level in range(1, tree.n_stages + 1):
        beams = tree.stage(level).beams
        maps = stage_maps(cfg, tree, level, keep_geometry=keep)
        if level >= start_level and beams >= min_beams and stage.shape[0] >= 2:
            minus = stage[0::2].copy()
            plus = stage[1::2].copy()
            # The two child images live in *different* polar frames
            # (their own phase centres), so they are compared as their
            # contributions to the parent grid -- the two summands of
            # eq. 5 -- which the stage maps already give us.  The path
            # error varies along the aperture, so each merge gets its
            # own compensation search; very dim pairs are skipped.
            energies = (
                np.abs(minus).sum(axis=(1, 2)) + np.abs(plus).sum(axis=(1, 2))
            )
            gate = 0.05 * float(energies.max()) if energies.size else 0.0
            for p in range(minus.shape[0]):
                if energies[p] <= gate:
                    continue
                c1 = np.where(
                    maps.valid[0],
                    minus[p][maps.beam_idx[0], maps.range_idx[0]],
                    0,
                )
                c2 = np.where(
                    maps.valid[1],
                    plus[p][maps.beam_idx[1], maps.range_idx[1]],
                    0,
                )
                res = estimate_compensation(c1, c2, candidates)
                results.append(res)
                # Confidence gate: only move the data when the winner
                # beats no-compensation decisively; a flat criterion
                # surface means the block carries no focus information.
                if res.best.range_shift != 0.0 and res.gain() >= min_gain:
                    half = res.best.scaled(0.5)
                    minus[p] = shift_stage_data(
                        minus[p][None], half.scaled(-1.0)
                    )[0]
                    plus[p] = shift_stage_data(plus[p][None], half)[0]
            merged = np.empty_like(stage)
            merged[0::2] = minus
            merged[1::2] = plus
            stage = merged
        stage = combine_children(stage, maps, cfg, opts)
    return stage, results
