"""SAR image formation: the paper's algorithm layer.

Public surface of the core contribution: data simulation, global
back-projection (the quality baseline), fast factorized back-projection
(the case-study algorithm), the autofocus criterion calculation, and
quality metrics.
"""

from repro.sar.analysis import (
    ImpulseResponse,
    impulse_response,
    theoretical_cross_range_resolution,
    theoretical_range_resolution,
)
from repro.sar.autofocus import (
    AutofocusResult,
    Compensation,
    apply_compensation,
    autofocus_search,
    autofocus_search_multi,
    criterion_for,
    default_candidates,
    estimate_compensation,
    ffbp_with_autofocus,
    grid_candidates,
    top_blocks,
)
from repro.sar.chain import ChainResult, ProcessingChain
from repro.sar.config import RadarConfig
from repro.sar.rda import range_doppler_image
from repro.sar.strip import StripFrame, StripProcessor, simulate_strip
from repro.sar.ffbp import FfbpOptions, ffbp, ffbp_partial, ffbp_stages
from repro.sar.gbp import backproject, gbp_cartesian, gbp_polar
from repro.sar.grids import CartesianGrid, CartesianImage, PolarGrid, PolarImage
from repro.sar.quality import QualityReport, image_entropy, normalized_rmse
from repro.sar.simulate import compress, simulate_compressed, simulate_raw

__all__ = [
    "ImpulseResponse",
    "impulse_response",
    "theoretical_cross_range_resolution",
    "theoretical_range_resolution",
    "autofocus_search_multi",
    "grid_candidates",
    "top_blocks",
    "ChainResult",
    "ProcessingChain",
    "range_doppler_image",
    "StripFrame",
    "StripProcessor",
    "simulate_strip",
    "AutofocusResult",
    "Compensation",
    "apply_compensation",
    "autofocus_search",
    "criterion_for",
    "default_candidates",
    "estimate_compensation",
    "ffbp_with_autofocus",
    "RadarConfig",
    "FfbpOptions",
    "ffbp",
    "ffbp_partial",
    "ffbp_stages",
    "backproject",
    "gbp_cartesian",
    "gbp_polar",
    "CartesianGrid",
    "CartesianImage",
    "PolarGrid",
    "PolarImage",
    "QualityReport",
    "image_entropy",
    "normalized_rmse",
    "compress",
    "simulate_compressed",
    "simulate_raw",
]
