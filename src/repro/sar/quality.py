"""Image-quality metrics.

Quantifies the paper's qualitative Fig. 7 discussion: FFBP images are
noisier than the GBP reference because of the simplified
(nearest-neighbour) interpolation, and "could be considerably improved
by using more complex interpolation kernels".  These metrics turn that
into numbers the quality-ablation benchmark can assert on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def peak_to_background_db(image: np.ndarray, guard: int = 3) -> float:
    """Peak magnitude over mean background magnitude, in dB.

    The background excludes a ``(2 guard + 1)``-pixel square around the
    peak.  Higher is better; interpolation noise raises the background.
    """
    mag = np.abs(np.asarray(image))
    if mag.size == 0:
        raise ValueError("empty image")
    peak_idx = np.unravel_index(int(np.argmax(mag)), mag.shape)
    peak = mag[peak_idx]
    mask = np.ones(mag.shape, dtype=bool)
    sl = tuple(
        slice(max(0, i - guard), i + guard + 1) for i in peak_idx
    )
    mask[sl] = False
    background = mag[mask]
    if background.size == 0 or background.mean() == 0:
        return np.inf
    return float(20.0 * np.log10(peak / background.mean()))


def image_entropy(image: np.ndarray) -> float:
    """Shannon entropy of the normalised intensity distribution.

    A classical SAR focus measure: well-focused point-target images
    concentrate energy in few pixels and have *low* entropy.
    """
    power = np.abs(np.asarray(image)) ** 2
    total = power.sum()
    if total == 0:
        return 0.0
    p = power / total
    nz = p[p > 0]
    return float(-(nz * np.log(nz)).sum())


def normalized_rmse(image: np.ndarray, reference: np.ndarray) -> float:
    """RMS magnitude error against a reference, normalised to its peak."""
    image = np.asarray(image)
    reference = np.asarray(reference)
    if image.shape != reference.shape:
        raise ValueError(
            f"shape mismatch {image.shape} vs {reference.shape}"
        )
    a = np.abs(image)
    b = np.abs(reference)
    peak = b.max()
    if peak == 0:
        raise ValueError("reference image is identically zero")
    # Scale out overall gain differences before comparing.
    denom = (a * b).sum()
    scale = (b * b).sum() / denom if denom > 0 else 1.0
    return float(np.sqrt(np.mean((a * scale - b) ** 2)) / peak)


def peak_position_error(
    image: np.ndarray, expected: tuple[float, float]
) -> float:
    """Euclidean pixel distance from the magnitude peak to ``expected``."""
    mag = np.abs(np.asarray(image))
    i, j = np.unravel_index(int(np.argmax(mag)), mag.shape)
    return float(np.hypot(i - expected[0], j - expected[1]))


@dataclass(frozen=True)
class QualityReport:
    """Bundle of the metrics for one image (vs an optional reference)."""

    peak_to_background_db: float
    entropy: float
    rmse_vs_reference: float | None = None

    @classmethod
    def of(
        cls, image: np.ndarray, reference: np.ndarray | None = None
    ) -> "QualityReport":
        return cls(
            peak_to_background_db=peak_to_background_db(image),
            entropy=image_entropy(image),
            rmse_vs_reference=(
                normalized_rmse(image, reference) if reference is not None else None
            ),
        )
