"""Degraded-mode demo: autofocus survives a dead interpolator core.

The paper's Fig. 9 mapping uses 13 of 16 cores and notes "the three
spare cores can then be used to execute the subsequent stages of SAR
signal processing" -- here they are the *spare capacity* that makes
graceful degradation possible.  When a fault plan crashes a core
before the run starts (``core:<id>@cycle=0:crash``), the mapping is
recomputed around it (:func:`repro.runtime.mapping.remap_placement`),
the pipeline completes on the surviving cores, and the cycle-count
penalty of the longer routes is reported.

This module is intentionally *above* both the kernels and the fault
layer (it imports them; nothing imports it), so it stays out of the
``repro.faults`` package namespace to avoid import cycles -- use
``from repro.faults.degraded import run_autofocus_degraded``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.faults.inject import FaultyMachine
from repro.kernels.autofocus_mpmd import build_pipeline, paper_placement
from repro.kernels.opcounts import AutofocusWorkload
from repro.machine.backends import get_machine
from repro.runtime.mapping import remap_placement

__all__ = ["DegradedRun", "run_autofocus_degraded"]


@dataclass(frozen=True)
class DegradedRun:
    """Baseline-vs-degraded comparison for one fault plan."""

    backend: str
    plan: str
    dead_cores: tuple[int, ...]
    moved: dict[str, tuple[int, int]]
    baseline_cycles: int
    degraded_cycles: int
    baseline_energy_j: float
    degraded_energy_j: float
    baseline_byte_hops: float
    degraded_byte_hops: float
    traffic: dict[tuple[str, str], dict[str, Any]]

    @property
    def penalty_cycles(self) -> int:
        return self.degraded_cycles - self.baseline_cycles

    @property
    def penalty_pct(self) -> float:
        if self.baseline_cycles == 0:
            return 0.0
        return 100.0 * self.penalty_cycles / self.baseline_cycles

    def format(self) -> str:
        lines = [
            f"degraded autofocus on {self.backend} "
            f"[plan {self.plan!r}]",
            f"  dead cores    : {list(self.dead_cores)}",
        ]
        for task, (old, new) in sorted(self.moved.items()):
            lines.append(
                f"  re-mapped     : {task} core {old} -> core {new}"
            )
        lines += [
            f"  baseline      : {self.baseline_cycles} cycles, "
            f"{self.baseline_byte_hops:.0f} byte-hops",
            f"  degraded      : {self.degraded_cycles} cycles, "
            f"{self.degraded_byte_hops:.0f} byte-hops",
            f"  penalty       : +{self.penalty_cycles} cycles "
            f"({self.penalty_pct:+.1f}%), "
            f"+{self.degraded_byte_hops - self.baseline_byte_hops:.0f} "
            f"byte-hops",
        ]
        rerouted = {
            edge: stats
            for edge, stats in self.traffic.items()
            if any(t in self.moved for t in edge)
        }
        for (a, b), stats in sorted(rerouted.items()):
            lines.append(
                f"  traffic {a}->{b}: {stats['messages']} msgs, "
                f"{stats['hops']} hops (was adjacent)"
            )
        return "\n".join(lines)


def run_autofocus_degraded(
    plan: str = "core:0@cycle=0:crash",
    backend: str = "event:e16",
    work: AutofocusWorkload | None = None,
    watchdog: int | None = None,
) -> DegradedRun:
    """Run the autofocus pipeline once clean and once degraded.

    The default plan kills core 0 -- range interpolator ``ri_a0`` in
    the Fig. 9 mapping -- before the run starts; its task re-maps onto
    one of the three spare cores and the pipeline completes with a
    cycle and NoC byte-hop penalty from the longer routes.  The
    injected crash must be dead-on-arrival (``@cycle=0``): a core lost
    *mid-run* is a detected
    :class:`~repro.faults.report.FaultReport`, not a degradation
    (there is no checkpoint to re-map from).
    """
    work = work or AutofocusWorkload(
        block_beams=6, block_ranges=4, n_candidates=4, iterations=1
    )
    # Baseline: fault-free run on a fresh machine of the same spec.
    base_pipeline = build_pipeline(get_machine(backend), work)
    baseline = base_pipeline.run()

    faulty = FaultyMachine(get_machine(backend), plan)
    dead = faulty.dead_cores()
    if not dead:
        raise ValueError(
            f"plan {plan!r} kills no core before cycle 1; the degraded "
            f"demo needs a dead-on-arrival crash (core:<id>@cycle=0:crash)"
        )
    place = paper_placement(
        work, faulty.spec.mesh_rows, faulty.spec.mesh_cols
    )
    place, moved = remap_placement(place, dead)
    pipeline = build_pipeline(faulty, work, place, watchdog=watchdog)
    degraded = pipeline.run()
    traffic = pipeline.traffic_summary()

    def byte_hops(p) -> float:
        return sum(s["byte_hops"] for s in p.traffic_summary().values())

    return DegradedRun(
        backend=backend,
        plan=faulty.plan.text,
        dead_cores=dead,
        moved=moved,
        baseline_cycles=baseline.cycles,
        degraded_cycles=degraded.cycles,
        baseline_energy_j=baseline.energy_joules,
        degraded_energy_j=degraded.energy_joules,
        baseline_byte_hops=byte_hops(base_pipeline),
        degraded_byte_hops=byte_hops(pipeline),
        traffic=traffic,
    )
