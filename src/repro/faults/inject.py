"""`FaultyMachine`: deterministic fault injection behind the Machine API.

Wraps any :class:`~repro.machine.api.Machine` (the cycle-accurate
event chip *or* the analytic backend) and threads a
:class:`~repro.faults.plan.FaultPlan` through every context operation:

- **core crash** -- each context call on the crashed core at/after the
  crash cycle raises a :class:`~repro.faults.report.FaultReport`
  (kind ``core-crash``); cores crashed at cycle 0 are *dead on
  arrival* and reported by :meth:`FaultyMachine.dead_cores` so the
  runtime layer can re-map their tasks (see
  :func:`repro.runtime.mapping.remap_placement`);
- **link stall/drop** -- applied at :meth:`FaultyContext.
  remote_write_arrival` (the channel-send path): a *stall* delays the
  message tail's arrival (maskable timing fault, identical semantics
  on both backends); a *drop* suppresses the arrival flag raise, so
  the consumer's watchdog or the deadlock detector fires;
- **DMA corrupt/stall** -- resolved when :meth:`FaultyContext.
  dma_prefetch` starts the matching transfer; ``corrupt-word`` raises
  a detected :class:`FaultReport` at :meth:`~FaultyContext.dma_wait`
  completion (the integrity check), ``stall=K`` delays completion;
- **flag drop** -- the ``nth`` raise through :meth:`FaultyContext.
  set_flag` / :meth:`FaultyMachine.set_flag_at` is lost.

With an *empty* plan every method delegates unchanged -- the wrapper
is a strict pass-through, verified against the differential oracles by
the chaos gate.

Determinism: all probabilistic decisions come from the plan's
:class:`~repro.faults.plan.FaultSchedule` (stateless hash draws), and
trigger indices advance in the backend's own deterministic execution
order, so one ``(plan, seed, backend, workload)`` tuple always
reproduces the identical outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.faults.plan import (
    ChipLinkFault,
    FaultPlan,
    FaultSchedule,
    LinkFault,
    parse_plan,
)
from repro.faults.report import FaultReport
from repro.machine.api import Machine, MachineContext, Programs, RunResult

__all__ = ["FaultEvent", "FaultyContext", "FaultyMachine"]

Coord = tuple[int, int]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault occurrence (for observability and tests)."""

    kind: str
    cycle: int
    clause: str
    detail: str = ""


@dataclass(frozen=True)
class _FaultyDmaToken:
    """A DMA token whose completion carries an injected outcome."""

    inner: Any
    extra_cycles: int
    corrupt: bool
    clause: str
    core: int


def _xy_links(src: Coord, dst: Coord) -> Iterator[tuple[Coord, Coord]]:
    """Directed links of the XY (columns-first) route -- the same
    dimension order as :meth:`repro.machine.noc.Mesh.route`."""
    r, c = src
    while c != dst[1]:
        step = 1 if dst[1] > c else -1
        yield ((r, c), (r, c + step))
        c += step
    while r != dst[0]:
        step = 1 if dst[0] > r else -1
        yield ((r, c), (r + step, c))
        r += step


class FaultyContext:
    """One core's view of a :class:`FaultyMachine`.

    Wraps the inner backend's context; generator methods stay
    generator-shaped (the event backend) or tuple-shaped (the analytic
    backend) because delegation returns the inner object unchanged --
    ``yield from`` treats both identically.
    """

    def __init__(self, machine: "FaultyMachine", inner: MachineContext) -> None:
        self.machine = machine
        self.inner = inner

    # -- delegated attributes -------------------------------------------
    @property
    def core_id(self) -> int:
        return self.inner.core_id

    @property
    def n_cores(self) -> int:
        return self.inner.n_cores

    @property
    def trace(self):
        return self.inner.trace

    @property
    def local(self):
        return self.inner.local

    @property
    def now(self) -> int:
        return self.inner.now

    # -- crash surveillance ---------------------------------------------
    def _check_crash(self) -> None:
        fault = self.machine._crash_for(self.inner.core_id)
        if fault is not None and self.inner.now >= fault.at_cycle:
            self.machine._record(
                "core-crash", self.inner.now, fault.clause(),
                f"core {fault.core} halted",
            )
            raise FaultReport(
                kind="core-crash",
                core=fault.core,
                cycle=self.inner.now,
                fault=fault.clause(),
                detail="core halted; every subsequent operation faults",
            )

    # -- compute + external memory --------------------------------------
    def work(self, block, mem: Iterable = ()):
        self._check_crash()
        return self.inner.work(block, mem)

    def ext_scatter_read(self, n_accesses: int):
        self._check_crash()
        return self.inner.ext_scatter_read(n_accesses)

    # -- on-chip communication ------------------------------------------
    def write_remote(self, dst_core: int, nbytes: float):
        self._check_crash()
        return self.inner.write_remote(dst_core, nbytes)

    def read_remote(self, src_core: int, nbytes: float):
        self._check_crash()
        return self.inner.read_remote(src_core, nbytes)

    def remote_write_arrival(self, dst_core: int, nbytes: float) -> int:
        self._check_crash()
        arrival = self.inner.remote_write_arrival(dst_core, nbytes)
        extra, dropped = self.machine._link_outcome(
            self.inner.core_id, dst_core
        )
        if dropped:
            # The landing that would publish this arrival is lost; the
            # very next set_flag_at on this machine is the publication
            # (the channel protocol posts, then raises -- single
            # threaded, so the latch cannot be claimed by anyone else).
            self.machine._drop_next_landing = True
        return arrival + extra

    def issue_stores(self, nbytes: float):
        self._check_crash()
        return self.inner.issue_stores(nbytes)

    # -- DMA -------------------------------------------------------------
    def dma_prefetch(self, nbytes: float) -> Any:
        self._check_crash()
        token = self.inner.dma_prefetch(nbytes)
        outcome = self.machine._dma_outcome(self.inner.core_id)
        if outcome is None:
            return token
        extra, corrupt, clause = outcome
        return _FaultyDmaToken(
            inner=token,
            extra_cycles=extra,
            corrupt=corrupt,
            clause=clause,
            core=self.inner.core_id,
        )

    def dma_wait(self, token: Any):
        self._check_crash()
        if not isinstance(token, _FaultyDmaToken):
            return self.inner.dma_wait(token)
        return self._dma_wait_faulty(token)

    def _dma_wait_faulty(self, token: _FaultyDmaToken) -> Iterator[Any]:
        yield from self.inner.dma_wait(token.inner)
        if token.extra_cycles:
            self.machine._record(
                "dma-stall", self.inner.now, token.clause,
                f"+{token.extra_cycles} cycles",
            )
            yield from self._extra_delay(token.extra_cycles)
        if token.corrupt:
            self.machine._record(
                "dma-corrupt", self.inner.now, token.clause,
                f"core {token.core} DMA integrity check failed",
            )
            raise FaultReport(
                kind="dma-corrupt",
                core=token.core,
                cycle=self.inner.now,
                fault=token.clause,
                detail="corrupted word detected at DMA completion",
            )

    def _extra_delay(self, cycles: int) -> Iterator[Any]:
        """Advance this core by ``cycles`` of injected stall, on either
        backend: virtual-clock backends expose ``t``; event backends
        take a ``Delay`` waitable."""
        inner = self.inner
        if hasattr(inner, "t"):  # analytic-style virtual clock
            inner.t += cycles
            inner.trace.stall_cycles += cycles
            return
        from repro.machine.event import delay

        inner.trace.stall_cycles += cycles
        yield delay(cycles)

    # -- synchronisation -------------------------------------------------
    def barrier(self):
        self._check_crash()
        return self.inner.barrier()

    def set_flag(self, flag: Any) -> None:
        self._check_crash()
        if self.machine._flag_raise_dropped():
            return
        self.inner.set_flag(flag)

    def wait_flag(self, flag: Any):
        self._check_crash()
        return self.inner.wait_flag(flag)


class FaultyMachine:
    """A :class:`~repro.machine.api.Machine` that injects a fault plan.

    ``FaultyMachine(inner, plan, seed)`` composes with any backend; the
    registry spec string ``"faulty(<plan>):<inner-spec>"`` builds one
    (see :mod:`repro.machine.backends`).
    """

    def __init__(
        self,
        inner: Machine,
        plan: FaultPlan | str = "",
        seed: int | None = None,
    ) -> None:
        self.inner = inner
        self.plan = parse_plan(plan) if isinstance(plan, str) else plan
        self.schedule = FaultSchedule(self.plan, seed)
        self.events: list[FaultEvent] = []
        self._contexts: dict[int, FaultyContext] = {}
        self._crash_by_core = {f.core: f for f in self.plan.core_faults}
        self._link_faults = [
            (j, f)
            for j, f in enumerate(self.plan.faults)
            if isinstance(f, LinkFault)
        ]
        self._link_triggers = {j: 0 for j, _ in self._link_faults}
        self._chiplink_faults = [
            (j, f)
            for j, f in enumerate(self.plan.faults)
            if isinstance(f, ChipLinkFault)
        ]
        self._chiplink_triggers = {j: 0 for j, _ in self._chiplink_faults}
        self._dma_counts: dict[int, int] = {}
        self._flag_raises = 0
        self._drop_next_landing = False
        self._chips: tuple[Machine, ...] | None = None

    # -- delegated Machine surface --------------------------------------
    @property
    def spec(self):
        return self.inner.spec

    @property
    def energy(self):
        return self.inner.energy

    @property
    def n_cores(self) -> int:
        return self.inner.n_cores

    @property
    def now(self) -> int:
        return self.inner.now

    @property
    def engine(self):
        """The inner event engine, if any (watchdogs sniff this)."""
        return getattr(self.inner, "engine", None)

    def hops(self, src_core: int, dst_core: int) -> int:
        return self.inner.hops(src_core, dst_core)

    def advance(self, cycles: int, busy_cores: int = 0) -> None:
        self.inner.advance(cycles, busy_cores)

    def flag(self, name: str = "") -> Any:
        return self.inner.flag(name=name)

    def context(self, core_id: int) -> FaultyContext:
        ctx = self._contexts.get(core_id)
        if ctx is None:
            ctx = self._contexts[core_id] = FaultyContext(
                self, self.inner.context(core_id)
            )
        return ctx

    # -- fault resolution ------------------------------------------------
    def _record(self, kind: str, cycle: int, clause: str, detail: str = "") -> None:
        self.events.append(FaultEvent(kind, int(cycle), clause, detail))

    def _crash_for(self, core_id: int):
        return self._crash_by_core.get(core_id)

    def dead_cores(self) -> tuple[int, ...]:
        """Cores crashed at cycle <= 0 (dead on arrival): the runtime
        layer re-maps their tasks onto survivors before the run."""
        return self.plan.dead_cores()

    def _coord(self, core_id: int) -> Coord:
        cols = self.inner.spec.mesh_cols
        return (core_id // cols, core_id % cols)

    def _link_outcome(self, src_core: int, dst_core: int) -> tuple[int, bool]:
        """(extra stall cycles, dropped?) for one posted message."""
        if not self._link_faults:
            return 0, False
        route = None
        extra = 0
        dropped = False
        for j, fault in self._link_faults:
            if route is None:
                route = set(
                    _xy_links(self._coord(src_core), self._coord(dst_core))
                )
            if (fault.src, fault.dst) not in route:
                continue
            idx = self._link_triggers[j]
            self._link_triggers[j] = idx + 1
            if not self.schedule.fires(j, idx):
                continue
            if fault.action == "stall":
                extra += fault.stall_cycles
                self._record(
                    "link-stall", self.inner.now, fault.clause(),
                    f"message {src_core}->{dst_core} +{fault.stall_cycles}c",
                )
            else:
                dropped = True
                self._record(
                    "link-drop", self.inner.now, fault.clause(),
                    f"message {src_core}->{dst_core} lost",
                )
        return extra, dropped

    def _dma_outcome(self, core_id: int):
        """None, or (extra cycles, corrupt?, clause) for this start."""
        if not self.plan.dma_faults:
            return None
        count = self._dma_counts.get(core_id, 0) + 1
        self._dma_counts[core_id] = count
        extra = 0
        corrupt = False
        clause = ""
        for fault in self.plan.dma_faults:
            if fault.core != core_id or fault.nth != count:
                continue
            clause = fault.clause()
            if fault.action == "stall":
                extra += fault.stall_cycles
            else:
                corrupt = True
        if not extra and not corrupt:
            return None
        return extra, corrupt, clause

    def _flag_raise_dropped(self) -> bool:
        """Count one flag raise; True if a flag fault eats it."""
        if not self.plan.flag_faults:
            return False
        self._flag_raises += 1
        n = self._flag_raises
        for fault in self.plan.flag_faults:
            if fault.nth == n:
                self._record(
                    "flag-drop", self.inner.now, fault.clause(),
                    f"flag raise #{n} lost",
                )
                return True
        return False

    # -- multi-chip fabric -------------------------------------------------
    @property
    def chips(self):
        """The inner fabric's chips, with chip 0 fault-wrapped.

        Convention: a plan's un-prefixed clauses (``core:``, ``link:``,
        ``dma:``, ``flag:``) address **chip 0** of a fabric -- the
        merge chip, where a fault hurts most -- while ``chiplink:``
        clauses address the fabric's e-links (resolved by
        :meth:`chiplink_outcome`).  None when the inner machine is not
        fabric-shaped.
        """
        inner_chips = getattr(self.inner, "chips", None)
        if inner_chips is None:
            return None
        if self._chips is None:
            self._chips = (
                FaultyMachine(
                    inner_chips[0],
                    self.plan.without_chiplink(),
                    self.schedule.seed,
                ),
            ) + tuple(inner_chips[1:])
        return self._chips

    def chiplink_cycles(self, nbytes: float, n_links: int = 1) -> int:
        return self.inner.chiplink_cycles(nbytes, n_links)

    def chiplink_energy_j(self, nbytes: float, n_links: int = 1) -> float:
        return self.inner.chiplink_energy_j(nbytes, n_links)

    def chiplink_outcome(self, src_chip: int, dst_chip: int) -> tuple[int, bool, str]:
        """(extra stall cycles, dropped?, clause) for one chip-boundary
        transfer, resolved against the plan's ``chiplink:`` clauses."""
        extra, dropped, clause = self.inner.chiplink_outcome(
            src_chip, dst_chip
        )
        for j, fault in self._chiplink_faults:
            if (fault.src_chip, fault.dst_chip) != (src_chip, dst_chip):
                continue
            idx = self._chiplink_triggers[j]
            self._chiplink_triggers[j] = idx + 1
            if not self.schedule.fires(j, idx):
                continue
            clause = fault.clause()
            if fault.action == "stall":
                extra += fault.stall_cycles
                self._record(
                    "chiplink-stall", self.inner.now, clause,
                    f"transfer chip {src_chip}->chip {dst_chip} "
                    f"+{fault.stall_cycles}c",
                )
            else:
                dropped = True
                self._record(
                    "chiplink-drop", self.inner.now, clause,
                    f"transfer chip {src_chip}->chip {dst_chip} lost",
                )
        return extra, dropped, clause

    # -- fabric services -------------------------------------------------
    def set_flag_at(self, flag: Any, cycle: int) -> None:
        if self._drop_next_landing:
            # A dropped link message: its publication flag never lands.
            self._drop_next_landing = False
            return
        if self._flag_raise_dropped():
            return
        self.inner.set_flag_at(flag, cycle)

    # -- execution --------------------------------------------------------
    def run(
        self, programs: Programs, max_cycles: int | None = None
    ) -> RunResult:
        """Run programs with every context call routed through the
        fault layer.  Structured failures (:class:`FaultReport` et al.)
        propagate; everything else is the inner backend's behaviour."""
        wrapped: Programs = {}
        for core_id, program in programs.items():
            fctx = self.context(core_id)

            def make(body, ctx):
                def kernel(_inner_ctx):
                    # ``_inner_ctx`` is the same object ``ctx`` wraps;
                    # the program sees only the fault layer.
                    return body(ctx)

                return kernel

            wrapped[core_id] = make(program, fctx)
        return self.inner.run(wrapped, max_cycles=max_cycles)
