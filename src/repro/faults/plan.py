"""Declarative, seed-driven fault plans.

A *fault plan* is a semicolon-separated list of clauses describing
which hardware faults to inject into a simulated run::

    core:5@cycle=10000:crash            # core 5 halts at cycle 10000
    link:(1,2)->(2,2)@p=0.01:stall=40   # mesh link degrades 1% of msgs
    link:(0,0)->(0,1)@p=0.5:drop        # mesh link loses messages
    chiplink:(1)->(0)@p=0.1:stall=500   # chip 1->0 e-link runs late
    chiplink:(2)->(0)@p=0.05:drop       # chip 2->0 e-link loses data
    dma:3:corrupt-word                  # core 3's next DMA is corrupted
    dma:3@n=2:stall=64                  # core 3's 2nd DMA runs 64c late
    flag:drop@n=2                       # the 2nd flag raise is lost
    seed=7                              # plan-level RNG seed (default 0)

Probabilistic clauses (``@p=...``) expand into a *deterministic*
schedule: the decision for trigger ``i`` of fault clause ``j`` is a
pure function of ``(plan text, seed, j, i)`` via
:func:`repro.exec.seeding.derive_seed` -- stable across processes,
platforms and ``PYTHONHASHSEED``, so a plan + seed reproduces the
identical fault schedule at any ``--jobs`` level (and the chaos gate
can assert byte-identical schedules, see
:meth:`FaultSchedule.fingerprint`).

Faults split into two containment classes (see
:mod:`repro.faults.report`):

- **maskable** -- pure timing (``link ... stall``, ``dma ... stall``):
  the run must still complete with identical numerical results;
- **non-maskable** (``crash``, ``drop``, ``corrupt-word``): the run
  must end in a structured failure, never a hang or a wrong answer.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from typing import Union

from repro.exec.seeding import SEED_BITS, derive_seed

__all__ = [
    "CoreFault",
    "LinkFault",
    "ChipLinkFault",
    "DmaFault",
    "FlagFault",
    "Fault",
    "FaultPlan",
    "FaultSchedule",
    "parse_plan",
]

Coord = tuple[int, int]


@dataclass(frozen=True)
class CoreFault:
    """A core halts: every context operation at/after ``at_cycle``
    raises a detected :class:`~repro.faults.report.FaultReport`."""

    core: int
    at_cycle: int
    action: str = "crash"

    @property
    def maskable(self) -> bool:
        return False

    @property
    def dead_on_arrival(self) -> bool:
        """Crashed before the run started: re-mappable around."""
        return self.at_cycle <= 0

    def clause(self) -> str:
        return f"core:{self.core}@cycle={self.at_cycle}:{self.action}"


@dataclass(frozen=True)
class LinkFault:
    """A directed mesh link degrades messages whose XY route uses it.

    Per message, with probability ``p`` (seeded, deterministic), either
    delay the tail by ``stall_cycles`` (``action="stall"``, maskable)
    or lose the message entirely (``action="drop"``: the arrival flag
    is never raised, surfacing as a watchdog stall or a deadlock).
    """

    src: Coord
    dst: Coord
    p: float
    action: str
    stall_cycles: int = 0

    @property
    def maskable(self) -> bool:
        return self.action == "stall"

    def clause(self) -> str:
        tail = f"stall={self.stall_cycles}" if self.action == "stall" else "drop"
        return (
            f"link:({self.src[0]},{self.src[1]})->"
            f"({self.dst[0]},{self.dst[1]})@p={self.p:g}:{tail}"
        )


@dataclass(frozen=True)
class DmaFault:
    """One core's ``nth`` DMA transfer misbehaves.

    ``corrupt-word`` models a bit flip caught by the integrity check at
    completion (detected, non-maskable); ``stall=K`` delays completion
    by ``K`` cycles (maskable).
    """

    core: int
    action: str
    nth: int = 1
    stall_cycles: int = 0

    @property
    def maskable(self) -> bool:
        return self.action == "stall"

    def clause(self) -> str:
        tail = f"stall={self.stall_cycles}" if self.action == "stall" else self.action
        n = f"@n={self.nth}" if self.nth != 1 else ""
        return f"dma:{self.core}{n}:{tail}"


@dataclass(frozen=True)
class ChipLinkFault:
    """A directed chip-to-chip e-link degrades boundary transfers.

    The fabric analogue of :class:`LinkFault`: per transfer from chip
    ``src_chip`` to chip ``dst_chip``, with probability ``p`` (seeded,
    deterministic), either delay the arrival by ``stall_cycles``
    (``action="stall"``, maskable) or lose the transfer
    (``action="drop"``: the sharded executive surfaces a structured
    ``chiplink-drop`` :class:`~repro.faults.report.FaultReport`).
    """

    src_chip: int
    dst_chip: int
    p: float
    action: str
    stall_cycles: int = 0

    @property
    def maskable(self) -> bool:
        return self.action == "stall"

    def clause(self) -> str:
        tail = f"stall={self.stall_cycles}" if self.action == "stall" else "drop"
        return (
            f"chiplink:({self.src_chip})->({self.dst_chip})"
            f"@p={self.p:g}:{tail}"
        )


@dataclass(frozen=True)
class FlagFault:
    """The ``nth`` flag raise through the machine API is lost.

    Models the paper's Section VI-B failure mode: "a single missed
    flag stalls the entire MPMD pipeline".  Counted over context
    ``set_flag`` calls and machine ``set_flag_at`` landings, 1-based,
    in execution order (deterministic per backend).
    """

    nth: int

    @property
    def maskable(self) -> bool:
        return False

    def clause(self) -> str:
        return f"flag:drop@n={self.nth}"


Fault = Union[CoreFault, LinkFault, DmaFault, FlagFault, ChipLinkFault]

_CORE_RE = re.compile(r"^core:(\d+)@cycle=(\d+):crash$")
_LINK_RE = re.compile(
    r"^link:\((\d+),(\d+)\)->\((\d+),(\d+)\)"
    r"@p=([0-9.eE+-]+):(?:stall=(\d+)|(drop))$"
)
_CHIPLINK_RE = re.compile(
    r"^chiplink:\((\d+)\)->\((\d+)\)"
    r"@p=([0-9.eE+-]+):(?:stall=(\d+)|(drop))$"
)
_DMA_RE = re.compile(r"^dma:(\d+)(?:@n=(\d+))?:(?:(corrupt-word)|stall=(\d+))$")
_FLAG_RE = re.compile(r"^flag:drop@n=(\d+)$")
_SEED_RE = re.compile(r"^seed=(\d+)$")


@dataclass(frozen=True)
class FaultPlan:
    """A parsed fault plan: clauses plus the plan-level seed.

    ``text`` is the *canonical* form (normalised clauses joined by
    ``"; "``), so two spellings of the same plan share one schedule.
    """

    text: str
    faults: tuple[Fault, ...]
    seed: int = 0

    @staticmethod
    def empty() -> "FaultPlan":
        return FaultPlan(text="", faults=())

    def __bool__(self) -> bool:
        return bool(self.faults)

    @property
    def maskable(self) -> bool:
        """True iff *every* clause is pure-timing (the run must then
        complete with result parity)."""
        return all(f.maskable for f in self.faults)

    # Filtered views (tuples are tiny; recompute freely).
    @property
    def core_faults(self) -> tuple[CoreFault, ...]:
        return tuple(f for f in self.faults if isinstance(f, CoreFault))

    @property
    def link_faults(self) -> tuple[LinkFault, ...]:
        return tuple(f for f in self.faults if isinstance(f, LinkFault))

    @property
    def dma_faults(self) -> tuple[DmaFault, ...]:
        return tuple(f for f in self.faults if isinstance(f, DmaFault))

    @property
    def flag_faults(self) -> tuple[FlagFault, ...]:
        return tuple(f for f in self.faults if isinstance(f, FlagFault))

    @property
    def chiplink_faults(self) -> tuple[ChipLinkFault, ...]:
        return tuple(f for f in self.faults if isinstance(f, ChipLinkFault))

    def without_chiplink(self) -> "FaultPlan":
        """The plan's chip-local clauses only (chiplink clauses removed).

        Used by the faulty fabric wrapper: un-prefixed clauses address
        chip 0, chiplink clauses address the fabric's e-links.
        """
        if not self.chiplink_faults:
            return self
        clauses = [
            f.clause()
            for f in self.faults
            if not isinstance(f, ChipLinkFault)
        ]
        if self.seed:
            clauses.append(f"seed={self.seed}")
        return parse_plan("; ".join(clauses))

    def dead_cores(self) -> tuple[int, ...]:
        """Cores crashed before cycle 1 (re-mappable around)."""
        return tuple(
            sorted({f.core for f in self.core_faults if f.dead_on_arrival})
        )


def _parse_clause(clause: str) -> Fault:
    m = _CORE_RE.match(clause)
    if m:
        return CoreFault(core=int(m.group(1)), at_cycle=int(m.group(2)))
    m = _LINK_RE.match(clause)
    if m:
        src = (int(m.group(1)), int(m.group(2)))
        dst = (int(m.group(3)), int(m.group(4)))
        if abs(src[0] - dst[0]) + abs(src[1] - dst[1]) != 1:
            raise ValueError(
                f"link fault {clause!r}: {src}->{dst} is not a directed "
                f"link between adjacent mesh nodes"
            )
        try:
            p = float(m.group(5))
        except ValueError:
            raise ValueError(f"link fault {clause!r}: bad probability") from None
        if not 0.0 < p <= 1.0:
            raise ValueError(
                f"link fault {clause!r}: p={p:g} outside (0, 1]"
            )
        if m.group(6) is not None:
            stall = int(m.group(6))
            if stall < 1:
                raise ValueError(f"link fault {clause!r}: stall must be >= 1")
            return LinkFault(src, dst, p, "stall", stall)
        return LinkFault(src, dst, p, "drop")
    m = _CHIPLINK_RE.match(clause)
    if m:
        src_chip, dst_chip = int(m.group(1)), int(m.group(2))
        if src_chip == dst_chip:
            raise ValueError(
                f"chiplink fault {clause!r}: source and destination "
                f"chip are both {src_chip}"
            )
        try:
            p = float(m.group(3))
        except ValueError:
            raise ValueError(
                f"chiplink fault {clause!r}: bad probability"
            ) from None
        if not 0.0 < p <= 1.0:
            raise ValueError(
                f"chiplink fault {clause!r}: p={p:g} outside (0, 1]"
            )
        if m.group(4) is not None:
            stall = int(m.group(4))
            if stall < 1:
                raise ValueError(
                    f"chiplink fault {clause!r}: stall must be >= 1"
                )
            return ChipLinkFault(src_chip, dst_chip, p, "stall", stall)
        return ChipLinkFault(src_chip, dst_chip, p, "drop")
    m = _DMA_RE.match(clause)
    if m:
        nth = int(m.group(2)) if m.group(2) else 1
        if nth < 1:
            raise ValueError(f"dma fault {clause!r}: n must be >= 1")
        if m.group(3):
            return DmaFault(core=int(m.group(1)), action="corrupt-word", nth=nth)
        stall = int(m.group(4))
        if stall < 1:
            raise ValueError(f"dma fault {clause!r}: stall must be >= 1")
        return DmaFault(
            core=int(m.group(1)), action="stall", nth=nth, stall_cycles=stall
        )
    m = _FLAG_RE.match(clause)
    if m:
        nth = int(m.group(1))
        if nth < 1:
            raise ValueError(f"flag fault {clause!r}: n must be >= 1")
        return FlagFault(nth=nth)
    raise ValueError(
        f"unparseable fault clause {clause!r}; expected one of "
        f"'core:<id>@cycle=<N>:crash', "
        f"'link:(r,c)->(r,c)@p=<p>:stall=<K>|drop', "
        f"'chiplink:(i)->(j)@p=<p>:stall=<K>|drop', "
        f"'dma:<core>[@n=<N>]:corrupt-word|stall=<K>', "
        f"'flag:drop@n=<N>', 'seed=<int>'"
    )


def parse_plan(text: str) -> FaultPlan:
    """Parse a fault-plan string into a :class:`FaultPlan`.

    Clauses are ``;``-separated; whitespace is insignificant; an empty
    string (or only whitespace/semicolons) is the empty plan.  Raises
    :class:`ValueError` with the offending clause on malformed input.
    """
    faults: list[Fault] = []
    seed = 0
    for raw in (text or "").split(";"):
        clause = "".join(raw.split()).lower()
        if not clause:
            continue
        m = _SEED_RE.match(clause)
        if m:
            seed = int(m.group(1))
            continue
        faults.append(_parse_clause(clause))
    clauses = [f.clause() for f in faults]
    if seed:  # a non-zero seed is part of the plan's identity
        clauses.append(f"seed={seed}")
    canonical = "; ".join(clauses)
    return FaultPlan(text=canonical, faults=tuple(faults), seed=seed)


class FaultSchedule:
    """The deterministic expansion of a plan under a seed.

    Every probabilistic decision is a pure function of
    ``(plan text, seed, clause index, trigger index)`` -- no mutable
    RNG state, so the schedule is identical however (and wherever) the
    simulation interleaves its queries.
    """

    def __init__(self, plan: FaultPlan, seed: int | None = None) -> None:
        self.plan = plan
        self.seed = plan.seed if seed is None else int(seed)

    def fires(self, fault_idx: int, trigger_idx: int) -> bool:
        """Does clause ``fault_idx`` fire on its ``trigger_idx``-th
        opportunity?  Deterministic; threshold test on a derived
        63-bit hash against ``p``."""
        fault = self.plan.faults[fault_idx]
        p = getattr(fault, "p", 1.0)
        if p >= 1.0:
            return True
        draw = derive_seed(
            self.seed, f"{self.plan.text}|{fault_idx}|{trigger_idx}"
        )
        return draw < int(p * (1 << SEED_BITS))

    def expand(self, horizon: int = 64) -> dict:
        """Materialise the first ``horizon`` decisions of every clause.

        The returned structure is canonical-JSON-stable: the
        byte-identical-schedule contract of the chaos gate compares
        :meth:`fingerprint` across processes and ``--jobs`` levels.
        """
        return {
            "plan": self.plan.text,
            "seed": self.seed,
            "clauses": [
                {
                    "clause": fault.clause(),
                    "maskable": fault.maskable,
                    "decisions": [
                        self.fires(j, i) for i in range(horizon)
                    ],
                }
                for j, fault in enumerate(self.plan.faults)
            ],
        }

    def fingerprint(self, horizon: int = 64) -> str:
        """SHA-256 hex digest of the canonical expanded schedule."""
        blob = json.dumps(
            self.expand(horizon), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()
