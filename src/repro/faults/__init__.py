"""Deterministic fault injection and runtime resilience.

See ``docs/architecture.md`` §11.  The subsystem splits into four
dependency-ordered modules:

- :mod:`repro.faults.report` -- structured failure vocabulary
  (dependency leaf, stdlib only);
- :mod:`repro.faults.plan` -- the declarative fault-plan grammar and
  its deterministic seeded expansion;
- :mod:`repro.faults.inject` -- :class:`FaultyMachine`, a wrapper
  implementing the machine Protocols over any inner backend;
- :mod:`repro.faults.degraded` -- graceful degradation: re-mapping the
  autofocus MPMD pipeline around dead cores.
"""

from repro.faults.inject import FaultEvent, FaultyContext, FaultyMachine
from repro.faults.plan import (
    CoreFault,
    DmaFault,
    Fault,
    FaultPlan,
    FaultSchedule,
    FlagFault,
    LinkFault,
    parse_plan,
)
from repro.faults.report import (
    CONTAINED_FAILURES,
    BlameReport,
    DeadlockReport,
    FaultReport,
    StallError,
)

__all__ = [
    "BlameReport",
    "CONTAINED_FAILURES",
    "CoreFault",
    "DeadlockReport",
    "DmaFault",
    "Fault",
    "FaultEvent",
    "FaultPlan",
    "FaultReport",
    "FaultSchedule",
    "FaultyContext",
    "FaultyMachine",
    "FlagFault",
    "LinkFault",
    "StallError",
    "parse_plan",
]
