"""Structured failure vocabulary for fault injection and resilience.

The containment invariant of the fault subsystem (see
``docs/architecture.md`` §11) is that an injected fault may change a
run's outcome in exactly one of five ways -- and never any other:

1. **result parity** -- the fault was *maskable* (pure timing: a slowed
   link, a delayed DMA) and the run completes with identical numerical
   results, possibly at a higher cycle count;
2. a structured :class:`FaultReport` -- the injected fault was detected
   and named (a crashed core, a corrupted DMA word);
3. a :class:`StallError` -- a watchdog expired on a flag wait, with a
   :class:`BlameReport` naming the stuck core, its peer, the flag and
   the wait window;
4. a :class:`DeadlockReport` -- every core of a run is blocked, with
   the per-task wait states at the deadlock cycle;
5. a *stalled* :class:`~repro.machine.api.RunResult` -- a
   ``run(max_cycles=...)`` budget cut the run short
   (``stalled=True``), with the pending ``wait_states`` attached.

A hang, a silent wrong answer, or an unstructured crash is a bug.

This module is a dependency leaf (stdlib only) so both the runtime
layer (:mod:`repro.runtime`) and the machine layer can raise these
without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "BlameReport",
    "FaultReport",
    "StallError",
    "DeadlockReport",
    "CONTAINED_FAILURES",
    "CONTAINED_CODES",
]


@dataclass(frozen=True)
class BlameReport:
    """Who is stuck, on what, since when.

    Emitted by channel watchdogs (inside a :class:`StallError`) and by
    the pipeline deadlock detector (inside a :class:`DeadlockReport`).
    ``role`` is ``"consumer"`` (waiting for data) or ``"producer"``
    (waiting for credit); ``peer_core`` is the core that should have
    unblocked the waiter.
    """

    channel: str
    role: str
    waiter_core: int
    peer_core: int
    flag: str
    since_cycle: int
    now_cycle: int

    @property
    def waited_cycles(self) -> int:
        return self.now_cycle - self.since_cycle

    def describe(self) -> str:
        return (
            f"{self.channel}: core {self.waiter_core} ({self.role}) "
            f"stuck on flag {self.flag!r} since cycle {self.since_cycle} "
            f"({self.waited_cycles} cycles; peer core {self.peer_core})"
        )


class FaultReport(RuntimeError):
    """An injected fault was detected and contained.

    Attributes: ``kind`` (``"core-crash"``, ``"dma-corrupt"``,
    ``"unmappable"``, ...), ``core`` (the affected core, if any),
    ``cycle`` (detection time), ``fault`` (the originating plan clause)
    and ``detail`` (free text).
    """

    def __init__(
        self,
        kind: str,
        detail: str = "",
        core: int | None = None,
        cycle: int | None = None,
        fault: str = "",
    ) -> None:
        bits = [f"fault contained: {kind}"]
        if core is not None:
            bits.append(f"on core {core}")
        if cycle is not None:
            bits.append(f"at cycle {cycle}")
        if fault:
            bits.append(f"[plan clause {fault!r}]")
        if detail:
            bits.append(f"-- {detail}")
        super().__init__(" ".join(bits))
        self.kind = kind
        self.core = core
        self.cycle = cycle
        self.fault = fault
        self.detail = detail

    def describe(self) -> tuple[Any, ...]:
        """Stable tuple for outcome fingerprinting (chaos gate)."""
        return ("fault", self.kind, self.core, self.fault)


class StallError(RuntimeError):
    """A watchdog expired on a flag wait: one core is stuck.

    Carries a :class:`BlameReport` diagnosing which core waited, on
    which channel flag, and for how long -- the diagnosis Section VI-B
    of the paper leaves to the programmer ("a single missed flag stalls
    the entire pipeline").
    """

    def __init__(self, blame: BlameReport, watchdog_cycles: int) -> None:
        super().__init__(
            f"stall: watchdog ({watchdog_cycles} cycles) expired -- "
            + blame.describe()
        )
        self.blame = blame
        self.watchdog_cycles = watchdog_cycles

    def describe(self) -> tuple[Any, ...]:
        b = self.blame
        return ("stall", b.channel, b.role, b.waiter_core, b.peer_core)


class DeadlockReport(RuntimeError):
    """Every core of a run is blocked; no event can unblock them.

    ``waits`` is a tuple of :class:`BlameReport` for channels that were
    mid-wait at the deadlock cycle (empty when the deadlock was not
    channel-shaped, e.g. a missing barrier party).
    """

    def __init__(
        self,
        cycle: int,
        waits: tuple[BlameReport, ...] = (),
        note: str = "",
    ) -> None:
        lines = [f"deadlock at cycle {cycle}"]
        if note:
            lines[0] += f": {note}"
        for w in waits:
            lines.append("  " + w.describe())
        super().__init__("\n".join(lines))
        self.cycle = cycle
        self.waits = waits
        self.note = note

    def describe(self) -> tuple[Any, ...]:
        return (
            "deadlock",
            tuple((w.channel, w.role, w.waiter_core) for w in self.waits),
        )


CONTAINED_FAILURES = (FaultReport, StallError, DeadlockReport)
"""The exception types an injected fault is allowed to surface as."""

CONTAINED_CODES = ("fault", "stall", "deadlock")
"""The leading ``describe()`` tags of :data:`CONTAINED_FAILURES`.

The serving tier uses these as wire-level error codes and as the
retryable class for its backoff policy: a contained failure is a
*diagnosed* outcome, so retrying it is safe (idempotent work, seeded
draws), unlike an unstructured crash.
"""
