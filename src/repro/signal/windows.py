"""Aperture/spectral taper windows.

Point-target responses of an unweighted matched filter carry -13 dB
sidelobes; tapering trades mainlobe width for sidelobe level.  The SAR
literature standard is the Taylor window; we implement it from its
closed form rather than importing it, since :mod:`repro.signal` is a
from-scratch substrate.
"""

from __future__ import annotations

import numpy as np


def taylor_window(n: int, nbar: int = 4, sll_db: float = -30.0) -> np.ndarray:
    """Taylor taper with ``nbar`` near-in sidelobes at ``sll_db`` level.

    Parameters
    ----------
    n:
        Window length.
    nbar:
        Number of nearly constant-level sidelobes adjacent to the
        mainlobe.
    sll_db:
        Desired peak sidelobe level in dB (negative).
    """
    if n < 1:
        raise ValueError(f"window length must be >= 1, got {n}")
    if sll_db >= 0:
        raise ValueError(f"sidelobe level must be negative dB, got {sll_db}")
    if n == 1:
        return np.ones(1)
    a = np.arccosh(10.0 ** (-sll_db / 20.0)) / np.pi
    sigma2 = nbar**2 / (a**2 + (nbar - 0.5) ** 2)
    m = np.arange(1, nbar)
    # Coefficients F_m of the cosine series.
    fm = np.empty(nbar - 1)
    for i, mi in enumerate(m):
        numerator = np.prod(1.0 - (mi**2 / sigma2) / (a**2 + (m - 0.5) ** 2))
        denominator = np.prod(
            [1.0 - mi**2 / mj**2 for mj in m if mj != mi]
        )
        fm[i] = ((-1.0) ** (mi + 1) / 2.0) * numerator / denominator
    x = (np.arange(n) - (n - 1) / 2.0) / n
    w = np.ones(n)
    for i, mi in enumerate(m):
        w += 2.0 * fm[i] * np.cos(2.0 * np.pi * mi * x)
    return w / w.max()
