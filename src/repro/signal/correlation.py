"""Autofocus focus criterion (paper eq. 6).

The autofocus method assumes a merge base of two and searches for the
flight-path compensation that best matches the images formed by the two
contributing subapertures.  The match is scored by the intensity
correlation

.. math::

    \\text{focus criterion} \\approx
        \\sum |f_-(r, f_i)|^2 \\times |f_+(r, f_i)|^2

where ``f_-`` and ``f_+`` are the (resampled) subimages of the earlier
and later contributing subapertures.  A well-focused compensation makes
bright pixels coincide, maximising the sum.
"""

from __future__ import annotations

import numpy as np


def intensity_correlation(f_minus: np.ndarray, f_plus: np.ndarray) -> float:
    """Pointwise intensity correlation ``sum |f-|^2 |f+|^2`` (eq. 6)."""
    f_minus = np.asarray(f_minus)
    f_plus = np.asarray(f_plus)
    if f_minus.shape != f_plus.shape:
        raise ValueError(
            f"subimages must have equal shapes, got {f_minus.shape} vs {f_plus.shape}"
        )
    p_minus = np.abs(f_minus) ** 2
    p_plus = np.abs(f_plus) ** 2
    return float(np.sum(p_minus * p_plus))


def focus_criterion(f_minus: np.ndarray, f_plus: np.ndarray) -> float:
    """Alias for :func:`intensity_correlation`, named as in the paper."""
    return intensity_correlation(f_minus, f_plus)


def normalized_focus_criterion(
    f_minus: np.ndarray, f_plus: np.ndarray
) -> float:
    """Eq. 6 normalised by the intensity self-energies.

    The raw criterion grows whenever resampling *concentrates* energy,
    not only when the two subimages align; dividing by
    ``sqrt(sum |f-|^4 * sum |f+|^4)`` (the cosine similarity of the
    intensity images) cancels that bias, so the search responds purely
    to the match.  This is the robust form the compensation search
    uses; the unnormalised eq. 6 remains available as
    :func:`focus_criterion`.
    """
    f_minus = np.asarray(f_minus)
    f_plus = np.asarray(f_plus)
    if f_minus.shape != f_plus.shape:
        raise ValueError(
            f"subimages must have equal shapes, got {f_minus.shape} vs {f_plus.shape}"
        )
    p_minus = np.abs(f_minus) ** 2
    p_plus = np.abs(f_plus) ** 2
    denom = np.sqrt(np.sum(p_minus**2) * np.sum(p_plus**2))
    if denom == 0:
        return 0.0
    return float(np.sum(p_minus * p_plus) / denom)
