"""Interpolation kernels.

Both case studies are interpolation-dominated:

- FFBP uses *simplified (nearest neighbour)* interpolation for both the
  range and angle lookups (paper Section V-B), trading image quality for
  speed -- the quality loss versus GBP in paper Fig. 7 comes from here.
- The autofocus criterion uses *cubic interpolation based on Neville's
  algorithm* (paper Section V-C, ref. [16]) swept along tilted paths.

All kernels operate on uniformly sampled data addressed in fractional
sample units and are vectorised over the evaluation positions.  They
accept real or complex sample arrays.
"""

from __future__ import annotations

import numpy as np


def interp_nearest(samples: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Nearest-neighbour lookup at fractional ``positions``.

    Positions outside ``[0, len-1]`` return 0 -- the paper's
    "skip the additions with zero when the indices are out of range"
    optimisation, expressed as a zero contribution.
    """
    samples = np.asarray(samples)
    positions = np.asarray(positions, dtype=np.float64)
    idx = np.rint(positions).astype(np.int64)
    valid = (idx >= 0) & (idx < samples.shape[-1])
    out = np.zeros(positions.shape, dtype=samples.dtype)
    out[valid] = samples[idx[valid]]
    return out


def interp_linear(samples: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Two-point linear interpolation at fractional ``positions``.

    Out-of-range positions return 0, matching :func:`interp_nearest`.

    The degenerate single-sample case is well defined: with ``n == 1``
    the only valid position is 0, which returns ``samples[0]``; every
    other position returns 0.  (Historically the stencil clip
    ``np.clip(i0, 0, n - 2)`` had inverted bounds for ``n == 1``,
    producing index ``-1`` and a silent wraparound through
    ``samples[i0c + 1]``.)
    """
    samples = np.asarray(samples)
    positions = np.asarray(positions, dtype=np.float64)
    n = samples.shape[-1]
    if n == 0:
        raise ValueError("interp_linear needs at least one sample")
    valid = (positions >= 0.0) & (positions <= n - 1)
    if n == 1:
        # No second stencil point exists; the interpolant degenerates
        # to the constant samples[0] on the (single-point) domain.
        out = np.broadcast_to(samples[..., 0], positions.shape)
        return np.where(valid, out, np.zeros((), dtype=samples.dtype))
    i0 = np.floor(positions).astype(np.int64)
    i0c = np.clip(i0, 0, n - 2)
    fr = np.where(valid, positions - i0c, 0.0)
    out = samples[i0c] * (1.0 - fr) + samples[i0c + 1] * fr
    return np.where(valid, out, np.zeros((), dtype=samples.dtype))


def neville(xs: np.ndarray, ys: np.ndarray, x: float) -> complex:
    """Classic Neville iterated interpolation (paper ref. [16]).

    Evaluates the unique degree ``len(xs)-1`` polynomial through the
    nodes ``(xs, ys)`` at ``x`` by Neville's triangular recursion.  This
    is the scalar reference implementation the vectorised kernels are
    validated against; the pipeline kernels use the uniform-grid fast
    path :func:`neville_weights`.
    """
    xs = np.asarray(xs, dtype=np.float64)
    p = np.array(ys, dtype=np.result_type(np.asarray(ys).dtype, np.float64))
    n = xs.size
    if n == 0 or p.shape[-1] != n:
        raise ValueError("xs and ys must be equal-length, non-empty")
    if np.unique(xs).size != n:
        raise ValueError("interpolation nodes must be distinct")
    for level in range(1, n):
        for i in range(n - level):
            j = i + level
            p[i] = ((x - xs[i]) * p[i + 1] - (x - xs[j]) * p[i]) / (xs[j] - xs[i])
    return p[0]


def neville_weights(frac: np.ndarray) -> np.ndarray:
    """Four-point cubic weights for a uniform grid.

    On equispaced nodes Neville's algorithm reduces to cubic Lagrange
    interpolation, which is linear in the four neighbouring samples.
    For a fractional position ``i + t`` (``t`` in [0, 1)) with stencil
    ``[i-1, i, i+1, i+2]``, returns the weights stacked on the last
    axis; ``w @ samples[stencil]`` evaluates the interpolant.
    """
    t = np.asarray(frac, dtype=np.float64)
    tm1 = t - 1.0
    tm2 = t - 2.0
    tp1 = t + 1.0
    w = np.stack(
        [
            -t * tm1 * tm2 / 6.0,
            tp1 * tm1 * tm2 / 2.0,
            -tp1 * t * tm2 / 2.0,
            tp1 * t * tm1 / 6.0,
        ],
        axis=-1,
    )
    return w


def interp_sinc(
    samples: np.ndarray, positions: np.ndarray, taps: int = 8, beta: float = 6.0
) -> np.ndarray:
    """Kaiser-windowed-sinc interpolation (the quality ceiling).

    The near-ideal reconstructor for band-limited data such as the
    carrier-retained range profiles: an ``taps``-point windowed sinc
    evaluated at each fractional position.  Used as the gold standard
    the cheaper kernels (nearest / linear / cubic) are judged against.

    Positions outside ``[0, len-1]`` return 0; stencils clamp at the
    array ends.
    """
    samples = np.asarray(samples)
    positions = np.asarray(positions, dtype=np.float64)
    n = samples.shape[-1]
    if taps < 2 or taps % 2:
        raise ValueError(f"taps must be even and >= 2, got {taps}")
    if n < taps:
        raise ValueError(f"sinc interpolation needs >= {taps} samples, got {n}")
    half = taps // 2
    i0 = np.clip(np.floor(positions).astype(np.int64), half - 1, n - half - 1)
    t = positions - i0
    offsets = np.arange(-(half - 1), half + 1)  # taps relative offsets
    x = t[..., None] - offsets  # (..., taps) distances to taps
    # Kaiser window over the stencil extent.
    from numpy import i0 as bessel_i0

    win_arg = 1.0 - (x / half) ** 2
    window = np.where(
        win_arg > 0, bessel_i0(beta * np.sqrt(np.maximum(win_arg, 0.0))), 0.0
    ) / bessel_i0(beta)
    w = np.sinc(x) * window
    # Normalise so constants reproduce exactly (guarding degenerate
    # all-zero stencils at far out-of-range positions, masked below).
    norm = np.sum(w, axis=-1, keepdims=True)
    w = w / np.where(np.abs(norm) > 1e-12, norm, 1.0)
    stencil = i0[..., None] + offsets
    vals = samples[stencil]
    out = np.einsum("...k,...k->...", w, vals)
    valid = (positions >= 0.0) & (positions <= n - 1)
    return np.where(valid, out, np.zeros((), dtype=out.dtype))


def cubic_neville(samples: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Four-point cubic (Neville/Lagrange) interpolation.

    Stencils are clamped at the array ends (the 6x6 autofocus blocks are
    small enough that edge stencils matter); positions outside
    ``[0, len-1]`` return 0.
    """
    samples = np.asarray(samples)
    positions = np.asarray(positions, dtype=np.float64)
    n = samples.shape[-1]
    if n < 4:
        raise ValueError(f"cubic interpolation needs >= 4 samples, got {n}")
    i0 = np.floor(positions).astype(np.int64)
    # Clamp so the 4-point stencil [i0-1 .. i0+2] stays in range.
    i0c = np.clip(i0, 1, n - 3)
    t = positions - i0c
    w = neville_weights(t)
    stencil = i0c[..., None] + np.arange(-1, 3)
    vals = samples[stencil]
    out = np.einsum("...k,...k->...", w, vals)
    valid = (positions >= 0.0) & (positions <= n - 1)
    return np.where(valid, out, np.zeros((), dtype=out.dtype))


def cubic_neville_rows(
    samples: np.ndarray, positions: np.ndarray
) -> np.ndarray:
    """Row-batched :func:`cubic_neville`.

    Interpolates every row of a ``(rows, n)`` sample array in one
    vectorised pass: ``positions`` is either ``(n_pos,)`` (the same
    path for every row) or ``(rows, n_pos)`` (a per-row path, e.g. the
    tilted resampling paths of the autofocus criterion or the per-line
    RCMC shifts).  Replaces the per-row Python loops that used to
    dominate ``resample_range``/``shift_stage_data``/RCMC; each output
    element is the same 4-tap weighted sum the scalar-row kernel
    computes, so results are bit-identical.
    """
    samples = np.asarray(samples)
    if samples.ndim != 2:
        raise ValueError(
            f"cubic_neville_rows needs (rows, n) samples, got {samples.shape}"
        )
    rows, n = samples.shape
    if n < 4:
        raise ValueError(f"cubic interpolation needs >= 4 samples, got {n}")
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim == 1:
        positions = np.broadcast_to(positions, (rows, positions.shape[0]))
    if positions.ndim != 2 or positions.shape[0] != rows:
        raise ValueError(
            f"positions shape {positions.shape} does not match {rows} rows"
        )
    i0 = np.floor(positions).astype(np.int64)
    i0c = np.clip(i0, 1, n - 3)
    t = positions - i0c
    w = neville_weights(t)  # (rows, n_pos, 4)
    stencil = i0c[..., None] + np.arange(-1, 3)  # (rows, n_pos, 4)
    vals = samples[np.arange(rows)[:, None, None], stencil]
    out = np.einsum("...k,...k->...", w, vals)
    valid = (positions >= 0.0) & (positions <= n - 1)
    return np.where(valid, out, np.zeros((), dtype=out.dtype))
