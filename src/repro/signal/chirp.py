"""Linear-FM (chirp) waveform generation.

The paper's input stimulus is *pulse-compressed* radar data; to generate
it honestly we start one step earlier in the chain of paper Fig. 1 with
the transmitted waveform.  Ultra-wideband low-frequency SAR (the CARABAS
family this research group works with; see paper refs. [5], [6])
transmits a linear-FM chirp whose fractional bandwidth is large, which
is what lets FFBP combine elements without explicit phase factors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

C0 = 299_792_458.0
"""Speed of light in vacuum (m/s)."""


@dataclass(frozen=True)
class LfmChirp:
    """A linear-FM pulse described at complex baseband + carrier.

    Parameters
    ----------
    center_frequency:
        Carrier ``f_c`` in Hz.  UWB low-frequency SAR sits in the VHF
        band; the default scene configuration uses tens of MHz.
    bandwidth:
        Swept bandwidth ``B`` in Hz; range resolution is ``c / (2 B)``.
    duration:
        Pulse length ``T`` in seconds.
    sample_rate:
        Complex sampling rate in Hz; must satisfy Nyquist for ``B``.
    """

    center_frequency: float
    bandwidth: float
    duration: float
    sample_rate: float

    def __post_init__(self) -> None:
        if self.center_frequency <= 0:
            raise ValueError("center_frequency must be positive")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.sample_rate < self.bandwidth:
            raise ValueError(
                f"sample_rate {self.sample_rate} undersamples bandwidth "
                f"{self.bandwidth}"
            )

    @property
    def wavelength(self) -> float:
        """Carrier wavelength in metres."""
        return C0 / self.center_frequency

    @property
    def range_resolution(self) -> float:
        """Rayleigh range resolution ``c / (2 B)`` in metres."""
        return C0 / (2.0 * self.bandwidth)

    @property
    def chirp_rate(self) -> float:
        """FM rate ``B / T`` in Hz/s."""
        return self.bandwidth / self.duration

    @property
    def n_samples(self) -> int:
        """Samples in one pulse at ``sample_rate``."""
        return max(1, int(round(self.duration * self.sample_rate)))

    def time_axis(self) -> np.ndarray:
        """Fast-time axis of the pulse, centred on zero."""
        n = self.n_samples
        return (np.arange(n) - (n - 1) / 2.0) / self.sample_rate

    def baseband(self) -> np.ndarray:
        """Complex-baseband replica ``exp(j pi (B/T) t^2)``."""
        t = self.time_axis()
        return np.exp(1j * np.pi * self.chirp_rate * t * t)

    def time_bandwidth_product(self) -> float:
        """Compression gain ``B * T``."""
        return self.bandwidth * self.duration
