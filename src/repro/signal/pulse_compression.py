"""Matched-filter pulse compression.

The first processing block of the SAR chain (paper Fig. 1): correlate
each received echo with the transmitted replica so a point target
collapses from a long chirp to a narrow compressed pulse.  Implemented
as FFT-based fast convolution, the standard approach the paper's
related-work section contrasts with time-domain correlation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.signal.chirp import LfmChirp


def _next_fast_len(n: int) -> int:
    """Smallest power of two >= n (good enough for our sizes)."""
    m = 1
    while m < n:
        m <<= 1
    return m


@dataclass
class MatchedFilter:
    """Frequency-domain matched filter for a fixed replica.

    The conjugated, time-reversed replica spectrum is precomputed once;
    :meth:`apply` then compresses a whole pulse batch with two FFTs.

    Parameters
    ----------
    replica:
        Complex transmit replica (baseband).
    normalize:
        If True (default), scale so an exact echo of the replica
        compresses to peak magnitude ~1 regardless of pulse length.
    """

    replica: np.ndarray
    normalize: bool = True

    def __post_init__(self) -> None:
        replica = np.asarray(self.replica, dtype=np.complex128)
        if replica.ndim != 1 or replica.size == 0:
            raise ValueError("replica must be a non-empty 1-D array")
        self.replica = replica
        gain = np.sum(np.abs(replica) ** 2)
        self._scale = 1.0 / gain if (self.normalize and gain > 0) else 1.0

    @classmethod
    def for_chirp(cls, chirp: LfmChirp, normalize: bool = True) -> "MatchedFilter":
        return cls(chirp.baseband(), normalize=normalize)

    def apply(self, echoes: np.ndarray) -> np.ndarray:
        """Compress echoes along the last axis.

        Returns an array of the same shape holding the cross-correlation
        at non-negative lags: an echo that is the replica delayed by
        ``d`` samples peaks at index ``d``.
        """
        echoes = np.asarray(echoes, dtype=np.complex128)
        n = echoes.shape[-1]
        m = self.replica.size
        nfft = _next_fast_len(n + m - 1)
        spec = np.fft.fft(echoes, nfft, axis=-1)
        ref = np.conj(np.fft.fft(self.replica, nfft))
        out = np.fft.ifft(spec * ref, axis=-1)
        return out[..., :n] * self._scale


def pulse_compress(echoes: np.ndarray, replica: np.ndarray) -> np.ndarray:
    """One-shot helper: matched-filter ``echoes`` against ``replica``."""
    return MatchedFilter(replica).apply(echoes)
