"""DSP substrate: waveforms, pulse compression, interpolation, criteria.

These are the signal-level building blocks of the SAR chain in paper
Fig. 1 that the back-projection block consumes, plus the interpolation
and correlation kernels the two case studies are built from.
"""

from repro.signal.chirp import LfmChirp
from repro.signal.correlation import focus_criterion, intensity_correlation
from repro.signal.interpolation import (
    cubic_neville,
    interp_linear,
    interp_nearest,
    interp_sinc,
    neville_weights,
)
from repro.signal.pulse_compression import MatchedFilter, pulse_compress
from repro.signal.windows import taylor_window

__all__ = [
    "LfmChirp",
    "focus_criterion",
    "intensity_correlation",
    "cubic_neville",
    "interp_linear",
    "interp_nearest",
    "interp_sinc",
    "neville_weights",
    "MatchedFilter",
    "pulse_compress",
    "taylor_window",
]
