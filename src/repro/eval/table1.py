"""Table I: resources, performance, and estimated power.

Regenerates every row of the paper's Table I for both case studies:
core counts, execution time, throughput (autofocus), speedup over the
sequential i7 reference, and estimated power -- plus, beyond the paper,
the activity model's measured average power.

The paper's reference numbers are kept in :data:`PAPER_TABLE1` so
benchmarks can assert the reproduction's shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exec import ExperimentRunner, TaskSpec
from repro.kernels.autofocus_mpmd import run_autofocus_mpmd
from repro.kernels.autofocus_seq import run_autofocus_seq_epiphany
from repro.kernels.cpu_ref import run_autofocus_cpu, run_ffbp_cpu
from repro.kernels.ffbp_common import FfbpPlan, plan_ffbp
from repro.kernels.ffbp_seq import run_ffbp_seq_epiphany
from repro.kernels.ffbp_spmd import run_ffbp_spmd
from repro.kernels.opcounts import AutofocusWorkload
from repro.machine.backends import resolve_backend
from repro.machine.cpu import CpuMachine
from repro.machine.specs import CpuSpec, EpiphanySpec
from repro.sar.config import RadarConfig

PAPER_TABLE1: dict[str, dict[str, float]] = {
    # FFBP implementations (execution time in ms).
    "ffbp_cpu": {"cores": 1, "time_ms": 1295.0, "speedup": 1.0, "power_w": 17.5},
    "ffbp_epi_seq": {"cores": 1, "time_ms": 3582.0, "speedup": 0.36, "power_w": 2.0},
    "ffbp_epi_par": {"cores": 16, "time_ms": 305.0, "speedup": 4.25, "power_w": 2.0},
    # Autofocus implementations (throughput in pixels/s).
    "af_cpu": {"cores": 1, "tput": 21600.0, "speedup": 1.0, "power_w": 17.5},
    "af_epi_seq": {"cores": 1, "tput": 17668.0, "speedup": 0.8, "power_w": 2.0},
    "af_epi_par": {"cores": 13, "tput": 192857.0, "speedup": 8.93, "power_w": 2.0},
    # Section VI text figures.
    "ffbp_par_vs_seq": {"speedup": 11.7},
    "af_par_vs_seq": {"speedup": 10.9},
}


@dataclass(frozen=True)
class Table1Row:
    """One implementation row of Table I."""

    name: str
    cores: int
    time_ms: float
    throughput_px_s: float | None
    speedup: float
    estimated_power_w: float
    modeled_power_w: float
    energy_j: float

    def efficiency(self) -> float:
        """Throughput per watt (the paper's energy-efficiency metric).

        For FFBP (no throughput column) the rate is 1/time; the ratio
        between implementations is what matters.
        """
        rate = (
            self.throughput_px_s
            if self.throughput_px_s is not None
            else 1000.0 / self.time_ms
        )
        return rate / self.estimated_power_w


@dataclass(frozen=True)
class Table1:
    """A reproduced case-study table."""

    rows: tuple[Table1Row, ...]

    def row(self, name: str) -> Table1Row:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)

    def format(self) -> str:
        from repro.eval.report import format_table

        body = []
        for r in self.rows:
            body.append(
                [
                    r.name,
                    str(r.cores),
                    f"{r.time_ms:.1f}",
                    f"{r.throughput_px_s:.0f}" if r.throughput_px_s else "-",
                    f"{r.speedup:.2f}",
                    f"{r.estimated_power_w:.1f}",
                    f"{r.modeled_power_w:.2f}",
                ]
            )
        return format_table(
            ["implementation", "cores", "time(ms)", "px/s", "speedup", "P_est(W)", "P_model(W)"],
            body,
        )


# -- row workers (module level: picklable for parallel fan-out) -------------

def _ffbp_row(
    kind: str,
    backend: str,
    espec: EpiphanySpec,
    cspec: CpuSpec,
    plan: FfbpPlan,
    n_cores: int,
):
    make, _ = resolve_backend(backend)
    if kind == "cpu":
        return run_ffbp_cpu(CpuMachine(cspec), plan)
    if kind == "seq":
        return run_ffbp_seq_epiphany(make(espec), plan)
    return run_ffbp_spmd(make(espec), plan, n_cores)


def _af_row(
    kind: str,
    backend: str,
    espec: EpiphanySpec,
    cspec: CpuSpec,
    work: AutofocusWorkload,
):
    make, _ = resolve_backend(backend)
    if kind == "cpu":
        return run_autofocus_cpu(CpuMachine(cspec), work)
    if kind == "seq":
        return run_autofocus_seq_epiphany(make(espec), work)
    return run_autofocus_mpmd(make(espec), work)


def ffbp_table(
    cfg: RadarConfig | None = None,
    plan: FfbpPlan | None = None,
    n_cores: int = 16,
    epiphany_spec: EpiphanySpec | None = None,
    cpu_spec: CpuSpec | None = None,
    backend: str = "event",
    jobs: int = 1,
) -> Table1:
    """Reproduce the three FFBP rows of Table I.

    ``backend`` selects the Epiphany simulation engine; Table-I-grade
    numbers come from the default calibrated event engine, the analytic
    backend gives a fast (few-percent) approximation.  ``jobs > 1``
    fans the three independent row simulations out over worker
    processes (byte-identical rows at any jobs level).
    """
    make, base_spec = resolve_backend(backend)
    espec = epiphany_spec or base_spec
    cspec = cpu_spec or CpuSpec()
    if plan is None:
        plan = plan_ffbp(cfg or RadarConfig.paper())

    runner = ExperimentRunner(jobs=jobs)
    r_cpu, r_seq, r_par = (
        r.value
        for r in runner.run(
            [
                TaskSpec(
                    key=f"table1/ffbp/{backend}/{kind}",
                    fn=_ffbp_row,
                    args=(kind, backend, espec, cspec, plan, n_cores),
                )
                for kind in ("cpu", "seq", "par")
            ]
        )
    )

    rows = (
        Table1Row(
            name="ffbp_cpu",
            cores=1,
            time_ms=r_cpu.seconds * 1e3,
            throughput_px_s=None,
            speedup=1.0,
            estimated_power_w=cspec.power_w,
            modeled_power_w=cspec.power_w,
            energy_j=r_cpu.energy_joules,
        ),
        Table1Row(
            name="ffbp_epi_seq",
            cores=1,
            time_ms=r_seq.seconds * 1e3,
            throughput_px_s=None,
            speedup=r_cpu.seconds / r_seq.seconds,
            estimated_power_w=espec.datasheet_chip_power_w,
            modeled_power_w=r_seq.average_power_w,
            energy_j=r_seq.energy_joules,
        ),
        Table1Row(
            name="ffbp_epi_par",
            cores=n_cores,
            time_ms=r_par.seconds * 1e3,
            throughput_px_s=None,
            speedup=r_cpu.seconds / r_par.seconds,
            estimated_power_w=espec.datasheet_chip_power_w,
            modeled_power_w=r_par.average_power_w,
            energy_j=r_par.energy_joules,
        ),
    )
    return Table1(rows)


def autofocus_table(
    work: AutofocusWorkload | None = None,
    epiphany_spec: EpiphanySpec | None = None,
    cpu_spec: CpuSpec | None = None,
    backend: str = "event",
    jobs: int = 1,
) -> Table1:
    """Reproduce the three autofocus rows of Table I."""
    w = work or AutofocusWorkload()
    make, base_spec = resolve_backend(backend)
    espec = epiphany_spec or base_spec
    cspec = cpu_spec or CpuSpec()

    runner = ExperimentRunner(jobs=jobs)
    r_cpu, r_seq, r_par = (
        r.value
        for r in runner.run(
            [
                TaskSpec(
                    key=f"table1/af/{backend}/{kind}",
                    fn=_af_row,
                    args=(kind, backend, espec, cspec, w),
                )
                for kind in ("cpu", "seq", "par")
            ]
        )
    )

    def tput(seconds: float) -> float:
        return w.pixels / seconds

    rows = (
        Table1Row(
            name="af_cpu",
            cores=1,
            time_ms=r_cpu.seconds * 1e3,
            throughput_px_s=tput(r_cpu.seconds),
            speedup=1.0,
            estimated_power_w=cspec.power_w,
            modeled_power_w=cspec.power_w,
            energy_j=r_cpu.energy_joules,
        ),
        Table1Row(
            name="af_epi_seq",
            cores=1,
            time_ms=r_seq.seconds * 1e3,
            throughput_px_s=tput(r_seq.seconds),
            speedup=r_cpu.seconds / r_seq.seconds,
            estimated_power_w=espec.datasheet_chip_power_w,
            modeled_power_w=r_seq.average_power_w,
            energy_j=r_seq.energy_joules,
        ),
        Table1Row(
            name="af_epi_par",
            cores=13,
            time_ms=r_par.seconds * 1e3,
            throughput_px_s=tput(r_par.seconds),
            speedup=r_cpu.seconds / r_par.seconds,
            estimated_power_w=espec.datasheet_chip_power_w,
            modeled_power_w=r_par.average_power_w,
            energy_j=r_par.energy_joules,
        ),
    )
    return Table1(rows)


def full_table1(
    cfg: RadarConfig | None = None,
    work: AutofocusWorkload | None = None,
    backend: str = "event",
    jobs: int = 1,
) -> tuple[Table1, Table1]:
    """Both halves of Table I at the paper's workload scale."""
    return (
        ffbp_table(cfg, backend=backend, jobs=jobs),
        autofocus_table(work, backend=backend, jobs=jobs),
    )
