"""Machine-readable performance benchmarks (``repro bench``).

Tracks the *implementation* cost of the reproduction -- host wall
time, simulated cycles and peak RSS -- for the Table-I workloads on
both simulation backends, plus the FFBP geometry planning that the
performance layer (:mod:`repro.perf`) memoises.  Output is a single
JSON document (schema :data:`BENCH_SCHEMA`) so successive commits form
a comparable trajectory: ``BENCH_<n>.json`` files at the repo root are
the committed baselines, and :func:`compare_bench` gates a candidate
run against one.

Schema (``repro-bench/1``)
--------------------------
::

    {
      "schema":  "repro-bench/1",
      "repeats": 3,                      # timing repeats (min is kept)
      "host":    {"python": .., "platform": .., "numpy": ..},
      "results": {
        "<scale>/<workload>/<backend>": {
          "wall_s":       0.0123,   # best-of-repeats host seconds
          "cycles":       3243780,  # simulated cycles (null: host-only)
          "rss_delta_kb": 81234     # growth of the RSS high-water mark
        }                           # across this row's repeats
      }
    }

Keys are ``{scale}/{workload}/{backend}``: scale is ``quick``
(256x257), ``paper`` (1024x1001) or ``fixed`` (scale-independent
workloads); backend is a registry spec (``event:e16``) or ``host`` for
pure-Python work.  ``wall_s`` is the only gated metric -- cycles are
deterministic outputs guarded by the verify gate's golden
fingerprints, and RSS is informational.  ``rss_delta_kb`` is measured
as the *growth* of ``ru_maxrss`` across the row's own repeats:
``ru_maxrss`` is a monotonic process-global high-water mark, so the
absolute value after a workload mostly describes whatever heavy row
ran before it.  The delta isolates each row's own contribution -- a
light workload scheduled after a heavy one reports ~0, not the heavy
row's inherited peak.  (Documents from schema revisions before PR 7
carry the old absolute ``peak_rss_kb`` field instead; readers here
accept both.)

The sharded-fabric rows (``{scale}/ffbp_sharded/{fabric-spec}``) add
two informational keys on top of the schema triple -- ``energy_j``
(simulated joules for the full fabric) and ``speedup_vs_1chip``
(simulated-cycle ratio against one chip of the same fabric) -- the
measured counterpart of the paper's multi-chip outlook.  The opt-in
replay rows (``.../replay(event:e16)``, ``--replay``) likewise add
``speedup_vs_cold``: the wall ratio of a compiled-schedule cache hit
against a cold event-engine run of the same workload.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Any, Callable, Mapping

BENCH_SCHEMA = "repro-bench/1"
DEFAULT_BACKENDS: tuple[str, ...] = ("event:e16", "analytic:e16")
DEFAULT_FABRIC_BACKENDS: tuple[str, ...] = ("analytic:4x(8x8)",)
DEFAULT_REGRESSION_FACTOR = 2.0
DEFAULT_REPEATS = 3

_SCALES: dict[str, tuple[int, int]] = {
    "quick": (256, 257),
    "paper": (1024, 1001),
}

_ABS_SLACK_S = 0.01
"""Absolute slack added to the regression threshold so microsecond-scale
entries (memo hits) cannot fail the gate on scheduler noise."""


def _peak_rss_kb() -> int:
    """Process peak RSS in KiB (Linux ``ru_maxrss`` unit); 0 if unknown."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        rss //= 1024
    return int(rss)


def _time_best(fn: Callable[[], Any], repeats: int) -> tuple[float, Any, int]:
    """Best-of-``repeats`` wall time, last return value, and RSS delta.

    The third element is the growth of the process RSS high-water mark
    (KiB) across the repeats.  Snapshotting ``ru_maxrss`` before and
    after -- rather than reporting its absolute value -- keeps a row
    from inheriting the peak of whatever heavier workload happened to
    run earlier in the process.
    """
    before = _peak_rss_kb()
    best = float("inf")
    value = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value, max(0, _peak_rss_kb() - before)


def _bench_plan(cfg, repeats: int) -> dict[str, dict[str, Any]]:
    """Geometry planning: cold (memo off) vs memoised (warm hit)."""
    from repro.kernels.ffbp_common import plan_ffbp
    from repro.perf import memo_disabled

    out: dict[str, dict[str, Any]] = {}

    def cold():
        with memo_disabled():
            return plan_ffbp(cfg)

    wall, _, rss = _time_best(cold, repeats)
    out["plan_ffbp_cold/host"] = {
        "wall_s": wall, "cycles": None, "rss_delta_kb": rss
    }

    plan_ffbp(cfg)  # warm the memo
    wall, _, rss = _time_best(lambda: plan_ffbp(cfg), repeats)
    out["plan_ffbp_memo/host"] = {
        "wall_s": wall, "cycles": None, "rss_delta_kb": rss
    }
    return out


def _bench_ffbp(cfg, backends: tuple[str, ...], repeats: int):
    """The Table-I parallel FFBP row (16-core SPMD) per backend."""
    from repro.kernels.ffbp_common import plan_ffbp
    from repro.kernels.ffbp_spmd import run_ffbp_spmd
    from repro.machine.backends import get_machine

    plan = plan_ffbp(cfg)
    out: dict[str, dict[str, Any]] = {}
    for backend in backends:
        wall, res, rss = _time_best(
            lambda b=backend: run_ffbp_spmd(get_machine(b), plan, 16), repeats
        )
        out[f"ffbp_spmd16/{backend}"] = {
            "wall_s": wall,
            "cycles": int(res.cycles),
            "rss_delta_kb": rss,
        }
    return out


def _bench_autofocus(backends: tuple[str, ...], repeats: int):
    """The Table-I parallel autofocus row (scale-independent)."""
    from repro.kernels.autofocus_mpmd import run_autofocus_mpmd
    from repro.kernels.opcounts import AutofocusWorkload
    from repro.machine.backends import get_machine

    work = AutofocusWorkload()
    out: dict[str, dict[str, Any]] = {}
    for backend in backends:
        wall, res, rss = _time_best(
            lambda b=backend: run_autofocus_mpmd(get_machine(b), work), repeats
        )
        out[f"autofocus_mpmd/{backend}"] = {
            "wall_s": wall,
            "cycles": int(res.cycles),
            "rss_delta_kb": rss,
        }
    return out


def _bench_fabric(cfg, fabric_backends: tuple[str, ...], repeats: int):
    """Sharded FFBP over a multi-chip fabric, vs one chip of the same
    fabric (the measured counterpart of the paper's E64/E1024 outlook).

    Extra row keys beyond the schema triple -- ``energy_j`` and
    ``speedup_vs_1chip`` -- are informational; :func:`compare_bench`
    gates only ``wall_s``, so adding them never breaks a baseline.
    """
    from repro.kernels.ffbp_common import plan_ffbp
    from repro.kernels.ffbp_fabric import run_ffbp_fabric
    from repro.kernels.ffbp_spmd import run_ffbp_spmd
    from repro.machine.backends import resolve_backend
    from repro.machine.specs import FabricSpec

    plan = plan_ffbp(cfg)
    out: dict[str, dict[str, Any]] = {}
    for backend in fabric_backends:
        make, spec = resolve_backend(backend)
        if not isinstance(spec, FabricSpec):
            raise ValueError(
                f"fabric backend {backend!r} is not a fabric spec; "
                f"expected the '<n>x(<chip-spec>)' form"
            )
        base = run_ffbp_spmd(make(spec.chip), plan, spec.cores_per_chip)
        wall, res, rss = _time_best(
            lambda: run_ffbp_fabric(make(spec), plan), repeats
        )
        out[f"ffbp_sharded/{backend}"] = {
            "wall_s": wall,
            "cycles": int(res.cycles),
            "rss_delta_kb": rss,
            "energy_j": float(res.energy_joules),
            "speedup_vs_1chip": round(base.cycles / res.cycles, 3),
        }
    return out


def _bench_replay(cfg, repeats: int, include_autofocus: bool = True):
    """The trace-compiled replay tier on the Table-I event rows.

    Each row warms the compiled-schedule cache with one capture run,
    then times *hits only* on fresh ``replay(event:e16)`` machines --
    the steady-state cost of a repeated event row.  ``speedup_vs_cold``
    (informational, like the fabric rows' extra keys) is the measured
    ratio against a cold event-engine run of the same workload;
    ``cycles`` must equal the cold row's byte-for-byte, which the
    verify gate's replay section enforces.
    """
    from repro.kernels.autofocus_mpmd import run_autofocus_mpmd
    from repro.kernels.ffbp_common import plan_ffbp
    from repro.kernels.ffbp_spmd import run_ffbp_spmd
    from repro.kernels.opcounts import AutofocusWorkload
    from repro.machine.backends import get_machine

    backend = "replay(event:e16)"
    plan = plan_ffbp(cfg)
    work = AutofocusWorkload()
    out: dict[str, dict[str, Any]] = {}
    cases = {
        f"ffbp_spmd16/{backend}": (
            lambda b: run_ffbp_spmd(get_machine(b), plan, 16)
        ),
    }
    if include_autofocus:
        cases[f"autofocus_mpmd/{backend}"] = (
            lambda b: run_autofocus_mpmd(get_machine(b), work)
        )
    for key, runner in cases.items():
        cold_wall, cold_res, _ = _time_best(lambda: runner("event:e16"), 1)
        runner(backend)  # warm: the capture run populates the cache
        wall, res, rss = _time_best(lambda: runner(backend), repeats)
        if res.cycles != cold_res.cycles:  # pragma: no cover - gate bug
            raise AssertionError(
                f"{key}: replay cycles {res.cycles} != cold {cold_res.cycles}"
            )
        out[key] = {
            "wall_s": wall,
            "cycles": int(res.cycles),
            "rss_delta_kb": rss,
            "speedup_vs_cold": round(cold_wall / max(wall, 1e-9), 2),
        }
    return out


def run_bench(
    quick: bool = False,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    repeats: int = DEFAULT_REPEATS,
    fabric_backends: tuple[str, ...] = DEFAULT_FABRIC_BACKENDS,
    replay: bool = False,
) -> dict[str, Any]:
    """Run the benchmark suite; return the schema document.

    ``quick=True`` restricts the scaled workloads to the 256x257 quick
    scale (the CI smoke configuration); the default also runs the
    paper's 1024x1001 workload.  ``fabric_backends`` names the fabric
    specs the sharded-FFBP rows run on (empty tuple: skip them).
    ``replay=True`` adds the trace-compiled tier's rows
    (``.../replay(event:e16)`` with an informational
    ``speedup_vs_cold``), timing cache *hits* against the cold event
    engine.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if not backends:
        raise ValueError("need at least one backend")
    from repro.sar.config import RadarConfig

    scales = ("quick",) if quick else tuple(_SCALES)
    results: dict[str, dict[str, Any]] = {}
    for scale in scales:
        pulses, ranges = _SCALES[scale]
        cfg = (
            RadarConfig.paper()
            if scale == "paper"
            else RadarConfig.small(n_pulses=pulses, n_ranges=ranges)
        )
        for key, row in _bench_plan(cfg, repeats).items():
            results[f"{scale}/{key}"] = row
        for key, row in _bench_ffbp(cfg, backends, repeats).items():
            results[f"{scale}/{key}"] = row
        for key, row in _bench_fabric(cfg, fabric_backends, repeats).items():
            results[f"{scale}/{key}"] = row
        if replay:
            rows = _bench_replay(
                cfg, repeats, include_autofocus=scale == scales[-1]
            )
            for key, row in rows.items():
                scope = "fixed" if key.startswith("autofocus") else scale
                results[f"{scope}/{key}"] = row
    for key, row in _bench_autofocus(backends, repeats).items():
        results[f"fixed/{key}"] = row
    return {
        "schema": BENCH_SCHEMA,
        "repeats": int(repeats),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "numpy": __import__("numpy").__version__,
        },
        "results": results,
    }


def compare_bench(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    factor: float = DEFAULT_REGRESSION_FACTOR,
) -> tuple[list[str], list[str]]:
    """Gate ``current`` against ``baseline``.

    Returns ``(regressions, notes)``.  A key regresses when its wall
    time exceeds ``factor * baseline + 10 ms`` (the absolute slack
    keeps microsecond-scale entries out of noise range).  Keys present
    on only one side, and simulated-cycle drift, are *notes*: cycle
    identity is the verify gate's job, and quick runs legitimately
    cover a subset of a full baseline.
    """
    for doc, side in ((current, "current"), (baseline, "baseline")):
        if doc.get("schema") != BENCH_SCHEMA:
            raise ValueError(
                f"{side} document schema {doc.get('schema')!r} != {BENCH_SCHEMA!r}"
            )
    if factor <= 0:
        raise ValueError(f"regression factor must be positive, got {factor}")
    cur = current["results"]
    base = baseline["results"]
    regressions: list[str] = []
    notes: list[str] = []
    for key in sorted(set(cur) & set(base)):
        c, b = cur[key], base[key]
        limit = factor * float(b["wall_s"]) + _ABS_SLACK_S
        if float(c["wall_s"]) > limit:
            regressions.append(
                f"{key}: wall {c['wall_s']:.4f}s > {factor:g}x baseline "
                f"{b['wall_s']:.4f}s (+{_ABS_SLACK_S:g}s slack)"
            )
        if c.get("cycles") != b.get("cycles"):
            notes.append(
                f"{key}: cycles {c.get('cycles')} != baseline "
                f"{b.get('cycles')} (model change?)"
            )
    for key in sorted(set(cur) ^ set(base)):
        side = "baseline" if key in base else "current"
        notes.append(f"{key}: only in {side}")
    return regressions, notes


def format_summary(doc: Mapping[str, Any]) -> str:
    """One line per result, aligned, for human eyes (stderr)."""
    lines = []
    for key in sorted(doc["results"]):
        row = doc["results"][key]
        cycles = "-" if row.get("cycles") is None else str(row["cycles"])
        if "rss_delta_kb" in row:
            rss = f"rss=+{row['rss_delta_kb']} KiB"
        elif "peak_rss_kb" in row:  # pre-PR-7: absolute high-water mark
            rss = f"rss={row['peak_rss_kb']} KiB"
        else:  # no memory accounting in this row at all
            rss = "rss=n/a"
        lines.append(
            f"{key:<42} {row['wall_s']*1e3:>10.2f} ms  "
            f"cycles={cycles:>12}  {rss}"
        )
    return "\n".join(lines)


def load_bench(path: str) -> dict[str, Any]:
    """Load and schema-check a bench document from ``path``."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: schema {doc.get('schema')!r} != {BENCH_SCHEMA!r}"
        )
    return doc
