"""Figure reproductions.

- :func:`fig7_images` -- the validation image set of paper Fig. 7:
  (a) pulse-compressed raw data with the targets' range-migration
  curves, (b) the GBP reference image, (c) FFBP processed with the
  "Intel" numerical path (complex128), (d) FFBP with the "Epiphany"
  path (complex64).  The paper's observations hold: (c) and (d) are
  visually identical, both noisier than (b).
- :func:`fig3_geometry` -- the element-combining geometry of Fig. 3b as
  numbers: per-stage subaperture counts, lengths and index-map spreads.
- :func:`fig6_partitioning` -- the coarse-grained data partitioning of
  Fig. 6 as the per-core slice table.
- :func:`fig9_mapping` -- the MPMD mapping of Fig. 9 as placement
  metrics (paper mapping vs naive mapping).

Figures 1, 2, 4, 5 and 8 are explanatory diagrams without data; their
content is realised by the corresponding modules (the processing chain,
stripmap geometry, autofocus dataflow, the architecture model).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.apertures import SubapertureTree
from repro.geometry.scene import Scene
from repro.kernels.autofocus_mpmd import naive_placement, paper_placement
from repro.kernels.ffbp_common import plan_ffbp
from repro.kernels.opcounts import AutofocusWorkload
from repro.runtime.spmd import partition
from repro.sar.config import RadarConfig
from repro.sar.ffbp import FfbpOptions, ffbp
from repro.sar.gbp import gbp_polar
from repro.sar.grids import PolarImage
from repro.sar.simulate import simulate_compressed


@dataclass(frozen=True)
class Fig7:
    """The four panels of paper Fig. 7."""

    raw: np.ndarray
    gbp: PolarImage
    ffbp_intel: PolarImage
    ffbp_epiphany: PolarImage
    cfg: RadarConfig
    scene: Scene


def default_scene(cfg: RadarConfig) -> Scene:
    """The six-point validation scene centred in the imaged area."""
    center = cfg.scene_center()
    r_extent = (cfg.n_ranges - 1) * cfg.dr
    r_mid = 0.5 * (cfg.r0 + cfg.r_max)
    x_extent = cfg.theta_span * r_mid
    return Scene.six_targets(
        x_center=float(center[0]),
        y_center=float(center[1]),
        x_extent=0.6 * x_extent,
        y_extent=0.6 * r_extent,
    )


def fig7_images(
    cfg: RadarConfig | None = None, scene: Scene | None = None
) -> Fig7:
    """Regenerate the Fig. 7 panel set.

    At the paper's full 1024x1001 scale GBP takes a while (that is the
    point of FFBP); benchmarks use a reduced configuration, the
    ``examples/fig7_images.py`` script runs full scale.
    """
    cfg = cfg or RadarConfig.small(n_pulses=128, n_ranges=257)
    scene = scene or default_scene(cfg)
    raw = simulate_compressed(cfg, scene)
    img_gbp = gbp_polar(np.asarray(raw, dtype=np.complex128), cfg)
    img_intel = ffbp(raw, cfg, FfbpOptions(dtype=np.complex128))
    img_epi = ffbp(raw, cfg, FfbpOptions(dtype=np.complex64))
    return Fig7(
        raw=raw,
        gbp=img_gbp,
        ffbp_intel=img_intel,
        ffbp_epiphany=img_epi,
        cfg=cfg,
        scene=scene,
    )


def ascii_image(magnitude: np.ndarray, width: int = 64, height: int = 24) -> str:
    """Coarse ASCII rendering of an image magnitude (log scale)."""
    mag = np.asarray(magnitude, dtype=np.float64)
    if mag.ndim != 2:
        raise ValueError("expected a 2-D magnitude array")
    h, w = mag.shape
    ri = np.linspace(0, h - 1e-9, height).astype(int)
    ci = np.linspace(0, w - 1e-9, width).astype(int)
    # Block-max downsampling keeps point targets visible.
    small = np.zeros((height, width))
    for i in range(height):
        r0, r1 = ri[i], (ri[i + 1] if i + 1 < height else h)
        r1 = max(r1, r0 + 1)
        for j in range(width):
            c0, c1 = ci[j], (ci[j + 1] if j + 1 < width else w)
            c1 = max(c1, c0 + 1)
            small[i, j] = mag[r0:r1, c0:c1].max()
    peak = small.max()
    if peak == 0:
        return "\n".join(" " * width for _ in range(height))
    db = 20 * np.log10(np.maximum(small / peak, 1e-6))
    ramp = " .:-=+*#%@"
    idx = np.clip(((db + 40.0) / 40.0) * (len(ramp) - 1), 0, len(ramp) - 1)
    return "\n".join("".join(ramp[int(v)] for v in row) for row in idx)


@dataclass(frozen=True)
class Fig3Stats:
    """Per-stage factorisation statistics (the Fig. 3 content)."""

    level: int
    n_subapertures: int
    length_m: float
    beams: int
    max_range_shift_bins: float
    max_angle_spread_child_beams: float


def fig3_geometry(cfg: RadarConfig | None = None) -> list[Fig3Stats]:
    """Quantify the element-combining geometry per merge stage.

    ``max_range_shift_bins`` is how far the child range r1/r2 deviates
    from the parent range (in bins); ``max_angle_spread_child_beams``
    is how many child beam rows one parent row's lookups span -- the
    quantity that defeats the local-memory window at late stages.
    """
    cfg = cfg or RadarConfig.paper()
    tree = SubapertureTree(cfg.n_pulses, cfg.spacing, cfg.merge_base)
    plan = plan_ffbp(cfg)
    from repro.sar.ffbp import stage_maps

    out = []
    for stage_plan in plan.stages:
        level = stage_plan.level
        maps = stage_maps(cfg, tree, level)
        st = tree.stage(level)
        parent_range_idx = np.arange(cfg.n_ranges)[None, None, :]
        shift = np.abs(maps.range_idx - parent_range_idx)
        spread = maps.beam_idx.max(axis=2) - maps.beam_idx.min(axis=2)
        out.append(
            Fig3Stats(
                level=level,
                n_subapertures=st.n_subapertures,
                length_m=st.length,
                beams=st.beams,
                max_range_shift_bins=float(shift[maps.valid].max())
                if maps.valid.any()
                else 0.0,
                max_angle_spread_child_beams=float(spread.max()),
            )
        )
    return out


def fig6_partitioning(
    cfg: RadarConfig | None = None, n_cores: int = 16
) -> list[dict[str, int]]:
    """The coarse-grained output partitioning as a per-core table."""
    cfg = cfg or RadarConfig.paper()
    rows = cfg.n_pulses  # output beam rows per stage
    slices = partition(rows, n_cores)
    return [
        {
            "core": i,
            "first_row": s.start,
            "rows": s.stop - s.start,
            "samples": (s.stop - s.start) * cfg.n_ranges,
        }
        for i, s in enumerate(slices)
    ]


@dataclass(frozen=True)
class MappingComparison:
    """Fig. 9 analogue: custom vs naive placement metrics."""

    paper_weighted_hops: float
    naive_weighted_hops: float
    paper_max_link_load: float
    naive_max_link_load: float

    @property
    def hop_improvement(self) -> float:
        return self.naive_weighted_hops / self.paper_weighted_hops


def fig9_mapping(work: AutofocusWorkload | None = None) -> MappingComparison:
    """Compare the paper-style custom mapping against a naive one."""
    w = work or AutofocusWorkload()
    custom = paper_placement(w)
    naive = naive_placement(w)
    return MappingComparison(
        paper_weighted_hops=custom.weighted_hops(),
        naive_weighted_hops=naive.weighted_hops(),
        paper_max_link_load=custom.max_link_load(),
        naive_max_link_load=naive.max_link_load(),
    )
