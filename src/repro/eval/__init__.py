"""Experiment harness: regenerates every table and figure of the paper.

- :mod:`repro.eval.table1` -- Table I (both case studies, all rows),
- :mod:`repro.eval.energy` -- the Section VI-A energy-efficiency ratios,
- :mod:`repro.eval.figures` -- Fig. 7 image set and the computational
  analogues of Figs. 3, 6 and 9,
- :mod:`repro.eval.report` -- paper-vs-measured formatting.
"""

from repro.eval.energy import energy_efficiency_ratios
from repro.eval.report import Comparison, format_comparisons
from repro.eval.table1 import (
    PAPER_TABLE1,
    Table1,
    Table1Row,
    autofocus_table,
    ffbp_table,
    full_table1,
)

__all__ = [
    "energy_efficiency_ratios",
    "Comparison",
    "format_comparisons",
    "PAPER_TABLE1",
    "Table1",
    "Table1Row",
    "autofocus_table",
    "ffbp_table",
    "full_table1",
]
