"""Parameter sweeps: the data series behind the scaling figures.

Packages the experiments the ablation benchmarks run into reusable
series producers (core count, prefetch window, clock, candidate grid,
chip generation), each returning a :class:`Series` that the report
helpers can render as an ASCII chart.

Every sweep takes a ``backend`` spec string (see
:mod:`repro.machine.backends`); design-space exploration normally runs
on ``"analytic"`` (an order of magnitude faster), while calibrated
figures use the default event engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.kernels.autofocus_mpmd import run_autofocus_mpmd, run_autofocus_scaled
from repro.kernels.ffbp_common import FfbpPlan, plan_ffbp
from repro.kernels.ffbp_spmd import run_ffbp_spmd
from repro.kernels.opcounts import AutofocusWorkload
from repro.machine.backends import resolve_backend
from repro.machine.specs import EpiphanySpec
from repro.sar.config import RadarConfig


@dataclass(frozen=True)
class Series:
    """One swept quantity: ``(x, y)`` pairs plus axis labels."""

    name: str
    x_label: str
    y_label: str
    x: tuple
    y: tuple

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("x and y must have equal lengths")

    def chart(self, width: int = 48) -> str:
        """Render as a horizontal ASCII bar chart."""
        if not self.y:
            return f"{self.name}: (empty)"
        peak = max(self.y)
        lines = [f"{self.name}  [{self.y_label} vs {self.x_label}]"]
        label_w = max(len(str(xv)) for xv in self.x)
        for xv, yv in zip(self.x, self.y):
            bar = "#" * max(1, int(round(width * yv / peak))) if peak > 0 else ""
            lines.append(f"  {str(xv):>{label_w}} | {bar} {yv:.3g}")
        return "\n".join(lines)


def ffbp_core_sweep(
    plan: FfbpPlan | None = None,
    cores: Sequence[int] = (1, 2, 4, 8, 16),
    spec: EpiphanySpec | None = None,
    backend: str = "event",
) -> Series:
    """Parallel-FFBP speedup versus core count (Fig. 6 scalability)."""
    plan = plan or plan_ffbp(RadarConfig.paper())
    make, base_spec = resolve_backend(backend)
    spec = spec or base_spec
    cycles = [run_ffbp_spmd(make(spec), plan, n).cycles for n in cores]
    base = cycles[0]
    speedups = tuple(round(base / c, 3) for c in cycles)
    return Series(
        name="FFBP strong scaling",
        x_label="cores",
        y_label=f"speedup vs {cores[0]} core(s)",
        x=tuple(cores),
        y=speedups,
    )


def ffbp_window_sweep(
    cfg: RadarConfig | None = None,
    windows: Sequence[int] = (8, 8008, 16016, 32032, 64064),
    n_cores: int = 16,
    backend: str = "event",
) -> Series:
    """Parallel-FFBP time versus prefetch-window bytes."""
    cfg = cfg or RadarConfig.paper()
    make, spec = resolve_backend(backend)
    ys = []
    for w in windows:
        plan = plan_ffbp(cfg, window_bytes=w)
        ys.append(run_ffbp_spmd(make(spec), plan, n_cores).seconds * 1e3)
    return Series(
        name="FFBP vs prefetch window",
        x_label="window bytes",
        y_label="time (ms)",
        x=tuple(windows),
        y=tuple(round(v, 2) for v in ys),
    )


def autofocus_unit_sweep(
    work: AutofocusWorkload | None = None,
    units: Sequence[int] = (1, 2, 3, 4),
    lanes: int = 3,
    backend: str = "event:e64",
) -> Series:
    """Autofocus throughput versus replicated pipeline units (E64)."""
    w = work or AutofocusWorkload()
    make, spec = resolve_backend(backend)
    ys = []
    for u in units:
        res = run_autofocus_scaled(make(spec), w, lanes=lanes, units=u)
        ys.append(u * w.pixels / res.seconds)
    return Series(
        name="autofocus unit scaling (E64)",
        x_label="pipeline units",
        y_label="pixels/s",
        x=tuple(units),
        y=tuple(round(v) for v in ys),
    )


def clock_sweep(
    plan: FfbpPlan | None = None,
    clocks_hz: Sequence[float] = (400e6, 600e6, 800e6, 1e9),
    n_cores: int = 16,
    backend: str = "event",
) -> Series:
    """Parallel-FFBP wall time versus core clock (board vs spec)."""
    plan = plan or plan_ffbp(RadarConfig.paper())
    make, base_spec = resolve_backend(backend)
    ys = []
    for clk in clocks_hz:
        spec = base_spec.with_clock(clk)
        ys.append(run_ffbp_spmd(make(spec), plan, n_cores).seconds * 1e3)
    return Series(
        name="FFBP vs clock",
        x_label="clock (Hz)",
        y_label="time (ms)",
        x=tuple(int(c) for c in clocks_hz),
        y=tuple(round(v, 1) for v in ys),
    )


def candidate_sweep(
    candidates: Sequence[int] = (27, 54, 108, 216, 432),
    backend: str = "event",
) -> Series:
    """Autofocus throughput versus candidate-grid size."""
    make, spec = resolve_backend(backend)
    ys = []
    for n in candidates:
        w = AutofocusWorkload(n_candidates=n)
        res = run_autofocus_mpmd(make(spec), w)
        ys.append(w.pixels / res.seconds)
    return Series(
        name="autofocus vs candidate grid",
        x_label="candidates",
        y_label="pixels/s",
        x=tuple(candidates),
        y=tuple(round(v) for v in ys),
    )
