"""Parameter sweeps: the data series behind the scaling figures.

Packages the experiments the ablation benchmarks run into reusable
series producers (core count, prefetch window, clock, candidate grid,
chip generation, fabric chip count), each returning a :class:`Series`
that the report helpers can render as an ASCII chart.

Every sweep takes a ``backend`` spec string (see
:mod:`repro.machine.backends`); design-space exploration normally runs
on ``"analytic"`` (an order of magnitude faster), while calibrated
figures use the default event engine.

Every sweep also takes ``jobs``: with ``jobs > 1`` the independent
sweep points fan out over the :class:`~repro.exec.ExperimentRunner`
worker pool.  Points are keyed by backend and x-value and the point
functions are pure, so the resulting :class:`Series` is byte-identical
at any ``jobs`` level (``jobs=1``, the default, runs inline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.exec import ExperimentRunner, TaskSpec
from repro.kernels.autofocus_mpmd import run_autofocus_mpmd, run_autofocus_scaled
from repro.kernels.ffbp_common import FfbpPlan, plan_ffbp
from repro.kernels.ffbp_spmd import run_ffbp_spmd
from repro.kernels.opcounts import AutofocusWorkload
from repro.machine.backends import resolve_backend
from repro.machine.specs import EpiphanySpec
from repro.sar.config import RadarConfig


@dataclass(frozen=True)
class Series:
    """One swept quantity: ``(x, y)`` pairs plus axis labels."""

    name: str
    x_label: str
    y_label: str
    x: tuple
    y: tuple

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("x and y must have equal lengths")

    def chart(self, width: int = 48) -> str:
        """Render as a horizontal ASCII bar chart.

        Bars scale by the series' peak *magnitude* so all-negative and
        mixed-sign series (energy deltas, regressions) keep their
        shape; negative bars are drawn with ``-`` instead of ``#``.
        An all-zero series renders values with no bars rather than
        dividing by a zero peak.
        """
        if not self.y:
            return f"{self.name}: (empty)"
        peak = max(abs(float(yv)) for yv in self.y)
        lines = [f"{self.name}  [{self.y_label} vs {self.x_label}]"]
        label_w = max(len(str(xv)) for xv in self.x)
        for xv, yv in zip(self.x, self.y):
            if peak > 0:
                glyph = "#" if yv >= 0 else "-"
                bar = glyph * max(1, int(round(width * abs(yv) / peak)))
            else:
                bar = ""
            lines.append(f"  {str(xv):>{label_w}} | {bar} {yv:.3g}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Point workers (module level: picklable for the process pool).  Each
# resolves its backend *in the worker* -- factories close over engine
# classes and are not picklable, spec strings are.
# ---------------------------------------------------------------------------

def _ffbp_cores_point(
    backend: str, spec: EpiphanySpec | None, plan: FfbpPlan, n_cores: int
) -> int:
    make, base_spec = resolve_backend(backend)
    return run_ffbp_spmd(make(spec or base_spec), plan, n_cores).cycles


def _ffbp_window_point(
    backend: str, cfg: RadarConfig, window_bytes: int, n_cores: int
) -> float:
    make, spec = resolve_backend(backend)
    plan = plan_ffbp(cfg, window_bytes=window_bytes)
    return run_ffbp_spmd(make(spec), plan, n_cores).seconds * 1e3


def _af_units_point(
    backend: str, work: AutofocusWorkload, lanes: int, units: int
) -> float:
    make, spec = resolve_backend(backend)
    res = run_autofocus_scaled(make(spec), work, lanes=lanes, units=units)
    return units * work.pixels / res.seconds


def _clock_point(
    backend: str, plan: FfbpPlan, clock_hz: float, n_cores: int
) -> float:
    make, base_spec = resolve_backend(backend)
    spec = base_spec.with_clock(clock_hz)
    return run_ffbp_spmd(make(spec), plan, n_cores).seconds * 1e3


def _candidate_point(backend: str, n_candidates: int) -> float:
    make, spec = resolve_backend(backend)
    w = AutofocusWorkload(n_candidates=n_candidates)
    res = run_autofocus_mpmd(make(spec), w)
    return w.pixels / res.seconds


def _ffbp_chips_point(
    backend: str, cfg: RadarConfig, n_chips: int, n_cores: int
) -> int:
    from repro.kernels.ffbp_fabric import run_ffbp_fabric
    from repro.machine.backends import get_machine

    plan = plan_ffbp(cfg)
    machine = get_machine(f"{backend}:{n_chips}x(e16)")
    return run_ffbp_fabric(machine, plan, n_cores).cycles


def _run_points(
    series: str,
    backend: str,
    fn: Callable[..., Any],
    points: Sequence[tuple],
    keys: Sequence[Any],
    jobs: int,
) -> list:
    """Fan independent sweep points out over the experiment runner.

    Tasks are keyed ``sweep/<series>/<backend>/<x>`` -- stable across
    runs, so cached results survive and seeds (none needed here; the
    sweeps are deterministic) would derive identically.
    """
    resolve_backend(backend)  # usage errors raise ValueError *here*,
    # in the caller's process, not as a wrapped TaskFailure in a worker
    runner = ExperimentRunner(jobs=jobs)
    tasks = [
        TaskSpec(key=f"sweep/{series}/{backend}/{key}", fn=fn, args=args)
        for key, args in zip(keys, points)
    ]
    return [r.value for r in runner.run(tasks)]


# ---------------------------------------------------------------------------
# Series producers
# ---------------------------------------------------------------------------

def ffbp_core_sweep(
    plan: FfbpPlan | None = None,
    cores: Sequence[int] = (1, 2, 4, 8, 16),
    spec: EpiphanySpec | None = None,
    backend: str = "event",
    jobs: int = 1,
) -> Series:
    """Parallel-FFBP speedup versus core count (Fig. 6 scalability)."""
    plan = plan or plan_ffbp(RadarConfig.paper())
    cycles = _run_points(
        "ffbp-cores",
        backend,
        _ffbp_cores_point,
        [(backend, spec, plan, n) for n in cores],
        cores,
        jobs,
    )
    base = cycles[0]
    speedups = tuple(round(base / c, 3) for c in cycles)
    return Series(
        name="FFBP strong scaling",
        x_label="cores",
        y_label=f"speedup vs {cores[0]} core(s)",
        x=tuple(cores),
        y=speedups,
    )


def ffbp_window_sweep(
    cfg: RadarConfig | None = None,
    windows: Sequence[int] = (8, 8008, 16016, 32032, 64064),
    n_cores: int = 16,
    backend: str = "event",
    jobs: int = 1,
) -> Series:
    """Parallel-FFBP time versus prefetch-window bytes."""
    cfg = cfg or RadarConfig.paper()
    ys = _run_points(
        "ffbp-window",
        backend,
        _ffbp_window_point,
        [(backend, cfg, w, n_cores) for w in windows],
        windows,
        jobs,
    )
    return Series(
        name="FFBP vs prefetch window",
        x_label="window bytes",
        y_label="time (ms)",
        x=tuple(windows),
        y=tuple(round(v, 2) for v in ys),
    )


def autofocus_unit_sweep(
    work: AutofocusWorkload | None = None,
    units: Sequence[int] = (1, 2, 3, 4),
    lanes: int = 3,
    backend: str = "event:e64",
    jobs: int = 1,
) -> Series:
    """Autofocus throughput versus replicated pipeline units (E64)."""
    w = work or AutofocusWorkload()
    ys = _run_points(
        "af-units",
        backend,
        _af_units_point,
        [(backend, w, lanes, u) for u in units],
        units,
        jobs,
    )
    return Series(
        name="autofocus unit scaling (E64)",
        x_label="pipeline units",
        y_label="pixels/s",
        x=tuple(units),
        y=tuple(round(v) for v in ys),
    )


def ffbp_chip_sweep(
    cfg: RadarConfig | None = None,
    chips: Sequence[int] = (1, 2, 4),
    n_cores: int = 16,
    backend: str = "analytic",
    jobs: int = 1,
) -> Series:
    """Sharded-FFBP speedup versus chip count (the multi-chip outlook).

    Each point runs the phased fabric executive
    (:func:`~repro.kernels.ffbp_fabric.run_ffbp_fabric`) on
    ``<n>x(e16)``; the 1-chip point is the zero-overhead fabric
    wrapper, so the series measures exactly what scale-out buys.
    ``backend`` must be a bare backend name (``analytic``/``event``) --
    the sweep composes the fabric spec itself.
    """
    if ":" in backend:
        raise ValueError(
            f"ffbp-chips sweeps a fabric spec per point; pass a bare "
            f"backend name, not {backend!r}"
        )
    cfg = cfg or RadarConfig.paper()
    cycles = _run_points(
        "ffbp-chips",
        backend,
        _ffbp_chips_point,
        [(backend, cfg, n, n_cores) for n in chips],
        chips,
        jobs,
    )
    base = cycles[0]
    return Series(
        name="FFBP fabric scale-out",
        x_label="chips",
        y_label=f"speedup vs {chips[0]} chip(s)",
        x=tuple(chips),
        y=tuple(round(base / c, 3) for c in cycles),
    )


def clock_sweep(
    plan: FfbpPlan | None = None,
    clocks_hz: Sequence[float] = (400e6, 600e6, 800e6, 1e9),
    n_cores: int = 16,
    backend: str = "event",
    jobs: int = 1,
) -> Series:
    """Parallel-FFBP wall time versus core clock (board vs spec)."""
    plan = plan or plan_ffbp(RadarConfig.paper())
    ys = _run_points(
        "clock",
        backend,
        _clock_point,
        [(backend, plan, clk, n_cores) for clk in clocks_hz],
        [int(c) for c in clocks_hz],
        jobs,
    )
    return Series(
        name="FFBP vs clock",
        x_label="clock (Hz)",
        y_label="time (ms)",
        x=tuple(int(c) for c in clocks_hz),
        y=tuple(round(v, 1) for v in ys),
    )


def candidate_sweep(
    candidates: Sequence[int] = (27, 54, 108, 216, 432),
    backend: str = "event",
    jobs: int = 1,
) -> Series:
    """Autofocus throughput versus candidate-grid size."""
    ys = _run_points(
        "candidates",
        backend,
        _candidate_point,
        [(backend, n) for n in candidates],
        candidates,
        jobs,
    )
    return Series(
        name="autofocus vs candidate grid",
        x_label="candidates",
        y_label="pixels/s",
        x=tuple(candidates),
        y=tuple(round(v) for v in ys),
    )
