"""Section II system-requirement analysis.

Paper Section II: "The integration time may be several minutes, which
means that the memory requirement for the data set is from 10 GBytes up
to 1 TBytes.  The computational performance demands are between
10 GFLOPS and 50 GFLOPS [4]."

This module derives those brackets from first principles for
representative next-generation operating points, so the claim is a
computation rather than a quotation: given wavelength, resolution,
swath, stand-off range and platform speed, compute the aperture the
resolution demands, the integration time, the data-set size, and the
sustained FLOP rate real-time FFBP (and, for contrast, GBP) would need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

FLOPS_PER_FFBP_COMBINE = 20.0
"""Flops per element combining (geometry + lookup + add; the
:data:`repro.kernels.opcounts.FFBP_SAMPLE` mix, per child)."""

FLOPS_PER_GBP_CONTRIB = 10.0
"""Flops per pulse contribution in direct back-projection."""

CHAIN_FACTOR = 2.0
"""Whole-chain overhead over bare image formation (autofocus criterion
calculations before each merge, compensation passes)."""


@dataclass(frozen=True)
class OperatingPoint:
    """One radar operating point (all SI units)."""

    name: str
    wavelength: float
    resolution: float
    """Required resolution, range and cross-range alike (metres)."""
    swath: float
    """Imaged range depth (metres)."""
    stand_off: float
    """Distance to the middle of the swath (metres)."""
    velocity: float
    """Platform speed (m/s)."""
    oversample: float = 1.2
    """Grid oversampling relative to the resolution."""

    # -- geometry the resolution demands --------------------------------
    @property
    def integration_angle(self) -> float:
        """``lambda / (2 delta)``: the angle that buys the resolution."""
        return self.wavelength / (2.0 * self.resolution)

    @property
    def aperture_length(self) -> float:
        return self.stand_off * self.integration_angle

    @property
    def integration_time_s(self) -> float:
        """Time to fly one synthetic aperture -- the paper's
        "integration time may be several minutes"."""
        return self.aperture_length / self.velocity

    @property
    def pulse_spacing(self) -> float:
        return self.resolution / self.oversample

    @property
    def n_pulses(self) -> int:
        return int(np.ceil(self.aperture_length / self.pulse_spacing))

    @property
    def n_ranges(self) -> int:
        return int(np.ceil(self.swath * self.oversample / self.resolution))

    # -- memory ----------------------------------------------------------
    @property
    def dataset_bytes(self) -> float:
        """One integration interval of complex64 data -- the paper's
        10 GB .. 1 TB bracket."""
        return float(self.n_pulses) * self.n_ranges * 8.0

    # -- compute ----------------------------------------------------------
    @property
    def output_pixel_rate(self) -> float:
        """Image pixels per second real-time stripmap must sustain:
        the strip advances ``v / dx`` columns of ``swath / dr`` pixels."""
        dx = self.pulse_spacing
        return (self.velocity / dx) * self.n_ranges

    @property
    def ffbp_gflops(self) -> float:
        """Sustained rate for real-time FFBP: ``2 log2 N`` combinings
        per output pixel."""
        combines = 2.0 * np.log2(max(self.n_pulses, 2))
        return self.output_pixel_rate * combines * FLOPS_PER_FFBP_COMBINE / 1e9

    @property
    def gbp_gflops(self) -> float:
        """Same for direct GBP: ``N`` contributions per pixel."""
        return (
            self.output_pixel_rate * self.n_pulses * FLOPS_PER_GBP_CONTRIB / 1e9
        )

    @property
    def realtime_gflops(self) -> float:
        """Whole-chain rate: image formation plus the autofocus
        criterion calculations before each merge (several candidate
        compensations tested) roughly doubles the back-projection
        arithmetic -- the bracket paper ref. [4] reports."""
        return CHAIN_FACTOR * self.ffbp_gflops


def paper_operating_points() -> tuple[OperatingPoint, ...]:
    """Representative low-frequency UWB stripmap operating points.

    Chosen to span the envelope of paper ref. [4] (the authors' own
    requirements study): metre-class resolution, tens-of-km swaths and
    stand-offs, ~100 m/s platforms.
    """
    return (
        OperatingPoint(
            name="surveillance / coarse",
            wavelength=6.0,
            resolution=1.8,
            swath=30e3,
            stand_off=60e3,
            velocity=120.0,
        ),
        OperatingPoint(
            name="mapping / fine",
            wavelength=6.0,
            resolution=1.0,
            swath=40e3,
            stand_off=80e3,
            velocity=100.0,
        ),
        OperatingPoint(
            name="wide-area / very fine",
            wavelength=3.0,
            resolution=0.5,
            swath=60e3,
            stand_off=120e3,
            velocity=100.0,
        ),
    )
