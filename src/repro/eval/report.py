"""Paper-vs-measured reporting utilities."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Comparison:
    """One reported quantity next to the paper's value."""

    name: str
    paper: float
    measured: float
    unit: str = ""

    @property
    def ratio(self) -> float:
        """measured / paper; 1.0 is a perfect reproduction."""
        if self.paper == 0:
            return float("inf") if self.measured else 1.0
        return self.measured / self.paper

    def within(self, rel_tol: float) -> bool:
        """True if the measured value is within ``rel_tol`` of paper's."""
        return abs(self.ratio - 1.0) <= rel_tol


def format_comparisons(title: str, rows: list[Comparison]) -> str:
    """Render comparisons as a fixed-width table."""
    name_w = max([len(r.name) for r in rows] + [len("quantity")])
    lines = [
        title,
        "-" * len(title),
        f"{'quantity':<{name_w}}  {'paper':>12}  {'measured':>12}  {'ratio':>7}  unit",
    ]
    for r in rows:
        lines.append(
            f"{r.name:<{name_w}}  {r.paper:>12.4g}  {r.measured:>12.4g}  "
            f"{r.ratio:>7.3f}  {r.unit}"
        )
    return "\n".join(lines)


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render a generic fixed-width table."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    out.append("  ".join("-" * w for w in widths))
    for row in rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)
