"""Energy-efficiency ratios (paper Section VI-A).

"The throughput per watt figure for the parallel autofocus
implementation on Epiphany is 78x higher than the figure for the
sequential implementation on the Intel processor, and the parallel
FFBP implementation is 38x more energy-efficient."

The ratio decomposes as ``speedup x (P_intel / P_epiphany)``: the
paper's 4.25 x 8.75 ~ 37 and 8.93 x 8.75 ~ 78.  We report the ratios
both with the paper's estimated powers (the datasheet anchors) and with
the activity model's measured powers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.table1 import Table1

PAPER_FFBP_EFFICIENCY_RATIO = 38.0
PAPER_AUTOFOCUS_EFFICIENCY_RATIO = 78.0


@dataclass(frozen=True)
class EfficiencyRatios:
    """Energy-efficiency of the parallel Epiphany run vs the i7 run."""

    estimated: float
    """Using the paper's method: datasheet powers (17.5 W vs 2 W)."""

    modeled: float
    """Using the activity-based average power of the actual run."""

    speedup: float
    power_ratio_estimated: float


def energy_efficiency_ratios(table: Table1, parallel_row: str, cpu_row: str) -> EfficiencyRatios:
    """Compute throughput/W ratios between two rows of a Table 1."""
    par = table.row(parallel_row)
    cpu = table.row(cpu_row)
    speedup = cpu.time_ms / par.time_ms
    est_power_ratio = cpu.estimated_power_w / par.estimated_power_w
    modeled_power_ratio = cpu.modeled_power_w / par.modeled_power_w
    return EfficiencyRatios(
        estimated=speedup * est_power_ratio,
        modeled=speedup * modeled_power_ratio,
        speedup=speedup,
        power_ratio_estimated=est_power_ratio,
    )
