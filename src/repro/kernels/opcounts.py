"""Shared operation mixes and workload definitions.

The machine models consume *work descriptions*; this module is the
single source of truth for how many operations each algorithmic step
costs, derived from the arithmetic the NumPy implementations actually
perform (see :mod:`repro.sar.ffbp` and :mod:`repro.sar.autofocus`).
Both machines receive the same mixes -- the paper applies the same
source-level optimisations to both architectures ("the said
optimization is applied in the case of both architectures").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.machine.core import OpBlock
from repro.sar.config import RadarConfig

COMPLEX_BYTES = 8
"""One image pixel: two 32-bit floats (paper Section V-B)."""


# ---------------------------------------------------------------------------
# FFBP element combining (paper eqs. 1-5), per parent output sample
# ---------------------------------------------------------------------------
#
# Per sample, per child:
#   ranges   (eqs. 1-2): r^2 and (l/2)^2 terms fold into 2 FMAs once the
#            per-beam cos(theta) is hoisted; then one square root.
#   angles   (eqs. 3-4): one FMA for the arccos argument plus one
#            libm-class arccos (the division folds into it).
#   indexing: ~7 integer ops (scale, round, clamp, bounds tests --
#            the paper's "skip the additions with zero" check).
#   lookup   one local load (or an external read, charged separately).
# Per sample (both children):
#   combine  (eq. 5): one complex add = 2 flops; one local store.
FFBP_SAMPLE = OpBlock(
    flops=2.0,
    fmas=4.0,
    sqrts=2.0,
    specials=2.0,
    int_ops=14.0,
    local_loads=2.0,
    local_stores=1.0,
)

FFBP_SAMPLE_INVALID = OpBlock(
    # Out-of-range samples still pay the geometry (the test needs the
    # indices) but skip the loads and the add.
    flops=0.0,
    fmas=4.0,
    sqrts=2.0,
    specials=2.0,
    int_ops=14.0,
    local_loads=0.0,
    local_stores=1.0,
)

# Per-sample *additional* cost of the richer interpolation kernels the
# paper suggests, relative to nearest-neighbour (per child: extra taps,
# weight arithmetic, extra addressing).
FFBP_INTERP_EXTRA = {
    "nearest": OpBlock(),
    "bilinear": OpBlock(
        # 3 extra taps + 4 real-weight blends per child, complex data.
        flops=8.0, fmas=8.0, int_ops=8.0, local_loads=6.0
    ),
    "cubic_range": OpBlock(
        # 3 extra range taps per child + Neville weight evaluation.
        flops=24.0, fmas=16.0, int_ops=6.0, local_loads=6.0
    ),
}


# ---------------------------------------------------------------------------
# Autofocus criterion (paper eq. 6 + Neville interpolation), per pixel
# ---------------------------------------------------------------------------
#
# One cubic interpolation of a complex pixel on the uniform grid
# (:func:`repro.signal.interpolation.neville_weights` + 4-tap dot):
#   weights: ~12 flops of polynomial evaluation in t,
#   dot:     4 taps x complex pixel = 8 FMAs,
#   address: ~6 integer ops, 4 complex local loads (8 scalar words).
AUTOFOCUS_INTERP = OpBlock(
    flops=12.0,
    fmas=8.0,
    int_ops=6.0,
    local_loads=8.0,
    local_stores=2.0,
)

# One correlation pixel: |f-|^2 (1 FMA + 1 mul), |f+|^2 (same),
# product (1 mul), accumulate (1 add).
AUTOFOCUS_CORR = OpBlock(
    flops=4.0,
    fmas=2.0,
    int_ops=2.0,
    local_loads=4.0,
)


@dataclass(frozen=True)
class FfbpWorkload:
    """The FFBP case-study workload (paper Section V-B)."""

    cfg: RadarConfig

    @property
    def n_stages(self) -> int:
        from repro.geometry.apertures import num_stages

        return num_stages(self.cfg.n_pulses, self.cfg.merge_base)

    @property
    def samples_per_stage(self) -> int:
        """Output samples per merge stage (constant across stages)."""
        return self.cfg.n_pulses * self.cfg.n_ranges

    @property
    def total_samples(self) -> int:
        return self.samples_per_stage * self.n_stages

    @property
    def image_bytes(self) -> int:
        return self.samples_per_stage * COMPLEX_BYTES

    @classmethod
    def paper(cls) -> "FfbpWorkload":
        return cls(RadarConfig.paper())


@dataclass(frozen=True)
class AutofocusWorkload:
    """The autofocus case-study workload (paper Section V-C).

    Two 6x6 pixel blocks; cubic (Neville) interpolation in range then
    beam; three pipeline iterations cover the block; a grid of
    candidate flight-path compensations is scored per criterion
    calculation.  The paper does not state its candidate count ("the
    criterion calculations are carried out many times for each merge");
    ``n_candidates = 216`` -- a 6x6x6 grid over (range shift, range
    tilt, beam shift) -- is calibrated so the reference model's
    throughput matches the paper's measured 21,600 pixels/s.
    """

    block_beams: int = 6
    block_ranges: int = 6
    n_candidates: int = 216
    iterations: int = 3

    def __post_init__(self) -> None:
        if self.block_beams < 4 or self.block_ranges < 4:
            raise ValueError("cubic interpolation needs blocks of >= 4 pixels")
        if self.n_candidates < 1 or self.iterations < 1:
            raise ValueError("need at least one candidate and one iteration")

    @property
    def pixels(self) -> int:
        """Criterion output pixels per calculation (the throughput unit)."""
        return self.block_beams * self.block_ranges

    @property
    def interps_per_candidate(self) -> int:
        """Interpolations per candidate: 2 blocks x 2 passes x pixels."""
        return 2 * 2 * self.pixels

    @property
    def corr_pixels_per_candidate(self) -> int:
        return self.pixels

    @property
    def block_bytes(self) -> int:
        return self.pixels * COMPLEX_BYTES

    def total_interp_ops(self) -> OpBlock:
        """All interpolation work of one criterion calculation."""
        n = self.interps_per_candidate * self.n_candidates * self.iterations
        return AUTOFOCUS_INTERP.scaled(n)

    def total_corr_ops(self) -> OpBlock:
        n = self.corr_pixels_per_candidate * self.n_candidates * self.iterations
        return AUTOFOCUS_CORR.scaled(n)


def row_op_block(
    valid_fraction: np.ndarray | float,
    n_ranges: int,
    interpolation: str = "nearest",
    external_lookups: bool = False,
) -> OpBlock:
    """Op mix of one FFBP output row given its valid-sample fraction.

    Mixes :data:`FFBP_SAMPLE` and :data:`FFBP_SAMPLE_INVALID` by the
    fraction of in-range lookups, implementing the paper's skip-zero
    optimisation at row granularity.  ``interpolation`` adds the extra
    per-sample cost of the richer kernels (the price side of the
    paper's "could be considerably improved" remark).

    ``external_lookups=True`` strips the local child-lookup loads (the
    sequential Epiphany configuration fetches children word-by-word
    from SDRAM, charged separately as scattered external reads).

    Row blocks repeat heavily -- every parent of a stage shares the
    same per-beam valid fractions, and design-space sweeps replay the
    same plans -- so results are memoised.  The returned
    :class:`~repro.machine.core.OpBlock` is frozen; treat it as shared.
    """
    if interpolation not in FFBP_INTERP_EXTRA:
        raise ValueError(
            f"unknown interpolation {interpolation!r}; "
            f"choose from {sorted(FFBP_INTERP_EXTRA)}"
        )
    if isinstance(valid_fraction, np.ndarray):
        f = float(np.mean(valid_fraction))
    else:
        f = float(valid_fraction)
    f = min(1.0, max(0.0, f))
    return _row_op_block(f, int(n_ranges), interpolation, external_lookups)


@lru_cache(maxsize=None)
def _row_op_block(
    f: float, n_ranges: int, interpolation: str, external_lookups: bool
) -> OpBlock:
    """Memoised core of :func:`row_op_block` (normalised arguments)."""
    extra = FFBP_INTERP_EXTRA[interpolation]
    nv = f * n_ranges
    ni = (1.0 - f) * n_ranges
    # Field-wise (FFBP_SAMPLE*nv + FFBP_SAMPLE_INVALID*ni) + extra*nv,
    # in the same association order as the original scaled()/__add__
    # chain so results are bit-identical to the unfused arithmetic.
    return OpBlock(
        flops=(FFBP_SAMPLE.flops * nv + FFBP_SAMPLE_INVALID.flops * ni)
        + extra.flops * nv,
        fmas=(FFBP_SAMPLE.fmas * nv + FFBP_SAMPLE_INVALID.fmas * ni)
        + extra.fmas * nv,
        sqrts=(FFBP_SAMPLE.sqrts * nv + FFBP_SAMPLE_INVALID.sqrts * ni)
        + extra.sqrts * nv,
        specials=(FFBP_SAMPLE.specials * nv + FFBP_SAMPLE_INVALID.specials * ni)
        + extra.specials * nv,
        int_ops=(FFBP_SAMPLE.int_ops * nv + FFBP_SAMPLE_INVALID.int_ops * ni)
        + extra.int_ops * nv,
        local_loads=0.0
        if external_lookups
        else (
            FFBP_SAMPLE.local_loads * nv
            + FFBP_SAMPLE_INVALID.local_loads * ni
        )
        + extra.local_loads * nv,
        local_stores=(
            FFBP_SAMPLE.local_stores * nv
            + FFBP_SAMPLE_INVALID.local_stores * ni
        )
        + extra.local_stores * nv,
    )
