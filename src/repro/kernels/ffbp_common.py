"""Shared FFBP kernel planning.

The machine kernels charge costs at *output-row* granularity (one
parent beam row of ``n_ranges`` samples).  Everything they need --
valid-sample fractions (the skip-zero optimisation), how many child
lookups fall inside the prefetched local-memory window versus going to
external memory, and how much data the window prefetch itself moves --
is derived here from the **actual index maps** of each merge stage
(:func:`repro.sar.ffbp.stage_maps`), not from hand-waved locality
assumptions.

A key structural fact keeps plans small: the index maps depend only on
the stage geometry, never on which parent is being merged, so per-row
statistics are computed once per stage for the ``K`` parent beams and
hold for every parent subaperture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.apertures import SubapertureTree
from repro.perf import memoize
from repro.sar.config import RadarConfig
from repro.sar.ffbp import stage_maps

PREFETCH_WINDOW_BYTES = 16016
"""The paper's prefetch budget: "the two upper data banks ... to store
the subaperture data corresponding to two pulses, which is equal to
16,016 bytes" (two 1001-sample complex64 rows)."""


@dataclass(frozen=True)
class StagePlan:
    """Cost-relevant statistics of one merge stage.

    All per-row arrays have shape ``(K,)`` where ``K`` is the parent
    beam count; they apply identically to every parent of the stage.

    Attributes
    ----------
    level:
        Merge level (1-based).
    n_parents, beams, n_ranges:
        Stage dimensions.
    valid_frac:
        Mean in-range fraction of child lookups per parent row.
    reads_row_total:
        Valid child lookups per row (what the *sequential* kernel
        fetches from external memory one word at a time).
    reads_row_ext:
        Valid lookups per row that fall *outside* the prefetch window
        (what the *parallel* kernel still fetches word-wise).
    med_row:
        ``(n_children, K)`` median child beam row of each parent row's
        lookups -- the centre the prefetch window tracks.
    window_rows:
        Child beam rows the per-child window holds.
    child_beams:
        Beam rows in each child subaperture.
    """

    level: int
    n_parents: int
    beams: int
    n_ranges: int
    valid_frac: np.ndarray
    reads_row_total: np.ndarray
    reads_row_ext: np.ndarray
    med_row: np.ndarray
    window_rows: int
    child_beams: int

    @property
    def rows(self) -> int:
        """Total output rows of the stage (parents x beams)."""
        return self.n_parents * self.beams

    def prefetch_rows_for_span(self, k0: int, k1: int) -> int:
        """Distinct child beam rows a window sweep over rows
        ``[k0, k1)`` of one parent must fetch, summed over children.

        The window tracks the per-row median; the distinct rows covered
        are the span of medians plus the window width, clipped to the
        child's extent.
        """
        if not 0 <= k0 < k1 <= self.beams:
            raise ValueError(f"bad beam span [{k0}, {k1}) for {self.beams} beams")
        if self.window_rows == 0:
            return 0
        total = 0
        half = self.window_rows // 2
        for c in range(self.med_row.shape[0]):
            med = self.med_row[c, k0:k1]
            lo = max(0, int(med.min()) - half)
            hi = min(self.child_beams - 1, int(med.max()) + half)
            total += hi - lo + 1
        return total


@dataclass(frozen=True)
class FfbpPlan:
    """Per-stage plans for a full FFBP run."""

    cfg: RadarConfig
    stages: tuple[StagePlan, ...]
    window_bytes: int

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    @property
    def total_samples(self) -> int:
        return sum(s.rows * s.n_ranges for s in self.stages)


def plan_stage(
    cfg: RadarConfig,
    tree: SubapertureTree,
    level: int,
    window_bytes: int = PREFETCH_WINDOW_BYTES,
) -> StagePlan:
    """Build the cost plan of one merge stage from its index maps."""
    maps = stage_maps(cfg, tree, level)
    parent = tree.stage(level)
    child = tree.stage(level - 1)
    n_children, beams, n_ranges = maps.valid.shape

    row_bytes = n_ranges * 8
    per_child_window = window_bytes // max(1, n_children)
    window_rows = per_child_window // row_bytes  # 0 = no prefetch at all

    valid_frac = maps.valid.mean(axis=(0, 2))
    reads_total = maps.valid.sum(axis=(0, 2)).astype(np.int64)

    med = np.median(maps.beam_idx, axis=2).astype(np.int64)  # (C, K)
    if window_rows == 0:
        in_window = np.zeros_like(maps.valid)
    else:
        half = window_rows // 2
        in_window = np.abs(maps.beam_idx - med[:, :, None]) <= half
    reads_ext = (maps.valid & ~in_window).sum(axis=(0, 2)).astype(np.int64)

    return StagePlan(
        level=level,
        n_parents=parent.n_subapertures,
        beams=beams,
        n_ranges=n_ranges,
        valid_frac=valid_frac,
        reads_row_total=reads_total,
        reads_row_ext=reads_ext,
        med_row=med,
        window_rows=window_rows,
        child_beams=child.beams,
    )


def plan_ffbp(
    cfg: RadarConfig, window_bytes: int = PREFETCH_WINDOW_BYTES
) -> FfbpPlan:
    """Build the full multi-stage plan for a configuration.

    The plan is machine-independent; the same plan feeds the Epiphany
    sequential, Epiphany SPMD and CPU reference kernels, which is what
    makes their comparison a controlled experiment.

    Plans depend only on ``(cfg, window_bytes)``, so they are memoised
    process-wide (and -- when ``REPRO_CACHE_DIR`` is set -- persisted
    through the execution layer's :class:`~repro.exec.cache.ResultCache`,
    keyed with :func:`~repro.exec.cache.code_version` so any source
    edit invalidates them).  A memo hit returns a byte-identical,
    read-only plan.
    """
    return memoize(
        "ffbp/plan",
        (cfg, int(window_bytes)),
        lambda: _build_plan_ffbp(cfg, window_bytes),
        persist=True,
    )


def _build_plan_ffbp(cfg: RadarConfig, window_bytes: int) -> FfbpPlan:
    """Cold build of :func:`plan_ffbp`."""
    tree = SubapertureTree(cfg.n_pulses, cfg.spacing, cfg.merge_base)
    stages = tuple(
        plan_stage(cfg, tree, level, window_bytes)
        for level in range(1, tree.n_stages + 1)
    )
    return FfbpPlan(cfg=cfg, stages=stages, window_bytes=window_bytes)
