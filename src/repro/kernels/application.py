"""The application executive: one focused image, end to end, on chip.

The paper evaluates FFBP and the autofocus criterion separately; the
system it describes interleaves them — before each subaperture merge,
criterion calculations run for the merge's parents, then the merge
itself executes.  This module runs that alternation *in the simulator*:
phases execute back-to-back on the same chip (the engine clock carries
across phases), so the reported total is one coherent timeline rather
than a sum of independent runs.

Phases per merge level ``L`` (with enough beams for a 6x6 block):

1. **autofocus phase** — the 13-core MPMD pipeline evaluates one
   criterion calculation per parent subaperture of level ``L``;
2. **merge phase** — the 16-core SPMD kernel executes stage ``L``'s
   element combining.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.apertures import SubapertureTree
from repro.kernels.autofocus_mpmd import build_pipeline, paper_placement
from repro.kernels.ffbp_common import FfbpPlan, StagePlan
from repro.kernels.ffbp_spmd import _core_row_spans
from repro.kernels.opcounts import COMPLEX_BYTES, AutofocusWorkload, row_op_block
from repro.machine.api import Machine, store
from repro.sar.config import RadarConfig


@dataclass(frozen=True)
class PhaseReport:
    """Timing of one executive phase."""

    level: int
    kind: str  # "autofocus" | "merge"
    cycles: int
    detail: str = ""


@dataclass(frozen=True)
class ApplicationResult:
    """One focused image's on-chip execution."""

    phases: tuple[PhaseReport, ...]
    total_cycles: int
    seconds: float
    energy_joules: float
    average_power_w: float

    def cycles_of(self, kind: str) -> int:
        return sum(p.cycles for p in self.phases if p.kind == kind)

    @property
    def autofocus_share(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.cycles_of("autofocus") / self.total_cycles


def _merge_stage_kernel(stage: StagePlan, n_cores: int):
    """SPMD kernel for a single merge stage (one barrier at the end)."""
    row_bytes = stage.n_ranges * COMPLEX_BYTES
    row_store = (store(row_bytes),)
    blocks = [
        row_op_block(v, stage.n_ranges) for v in stage.valid_frac.tolist()
    ]
    reads_ext = [int(r) for r in stage.reads_row_ext.tolist()]

    def kernel(ctx):
        spans = _core_row_spans(stage, ctx.core_id, n_cores)
        n_rows = sum(k1 - k0 for _p, k0, k1 in spans)
        if n_rows == 0:
            yield from ctx.barrier()
            return
        prefetch_bytes = sum(
            stage.prefetch_rows_for_span(k0, k1) * row_bytes
            for _p, k0, k1 in spans
        )
        per_row = prefetch_bytes / n_rows
        token = ctx.dma_prefetch(per_row)
        for _parent, k0, k1 in spans:
            for k in range(k0, k1):
                yield from ctx.dma_wait(token)
                token = ctx.dma_prefetch(per_row)
                yield from ctx.ext_scatter_read(reads_ext[k])
                yield from ctx.work(blocks[k], row_store)
        yield from ctx.dma_wait(token)
        yield from ctx.barrier()

    return kernel


def run_focused_image(
    machine: Machine,
    plan: FfbpPlan,
    af_work: AutofocusWorkload | None = None,
    min_beams: int = 8,
    n_cores: int = 16,
    exact: bool = False,
) -> ApplicationResult:
    """Execute one full image formation with autofocus on ``machine``.

    The same machine object carries the clock across phases; per-phase
    cycle counts come from machine-time deltas.

    ``exact=False`` (default) simulates one criterion calculation per
    level in full and advances the clock for the remaining identical
    calculations at the measured per-calculation cost (they are
    independent, so steady-state replication is exact up to pipeline
    fill, which the simulated one includes).  ``exact=True`` simulates
    every calculation event by event.
    """
    work = af_work or AutofocusWorkload()
    cfg: RadarConfig = plan.cfg
    tree = SubapertureTree(cfg.n_pulses, cfg.spacing, cfg.merge_base)
    phases: list[PhaseReport] = []
    start_total = machine.now

    for stage in plan.stages:
        level = stage.level
        parents = tree.stage(level)
        if parents.beams >= min_beams:
            # One criterion calculation per parent of this merge.
            before = machine.now
            n_calcs = parents.n_subapertures
            simulated = n_calcs if exact else 1
            for _parent in range(simulated):
                pipe = build_pipeline(
                    machine,
                    work,
                    paper_placement(
                        work, machine.spec.mesh_rows, machine.spec.mesh_cols
                    ),
                )
                pipe.run()
                _release_pipeline_buffers(machine, pipe)
            if not exact and n_calcs > 1:
                per_calc = machine.now - before
                machine.advance((n_calcs - 1) * per_calc, busy_cores=13)
            phases.append(
                PhaseReport(
                    level=level,
                    kind="autofocus",
                    cycles=machine.now - before,
                    detail=f"{parents.n_subapertures} criterion calc(s)",
                )
            )
        before = machine.now
        machine.run(
            {c: _merge_stage_kernel(stage, n_cores) for c in range(n_cores)}
        )
        phases.append(
            PhaseReport(
                level=level,
                kind="merge",
                cycles=machine.now - before,
                detail=f"{stage.rows} output rows",
            )
        )

    total = machine.now - start_total
    seconds = total / machine.spec.clock_hz
    energy = machine.energy.energy_joules(machine.now, active_cores=n_cores)
    power = machine.energy.average_power_w(machine.now, active_cores=n_cores)
    return ApplicationResult(
        phases=tuple(phases),
        total_cycles=total,
        seconds=seconds,
        energy_joules=energy,
        average_power_w=power,
    )


def _release_pipeline_buffers(machine: Machine, pipe) -> None:
    """Free the channel slots a finished pipeline reserved, so repeated
    criterion calculations do not leak scratchpad."""
    for (a, b), ch in pipe.channels.items():
        if ch.payload_bytes is not None:
            machine.context(ch.dst_core).local.free(
                ch.capacity * ch.payload_bytes
            )
