"""The paper's kernel implementations on the modelled machines.

Each case study exists in the paper's three configurations:

========================  =====================================  ==========================
Implementation            Module                                 Machine
========================  =====================================  ==========================
FFBP sequential           :mod:`repro.kernels.ffbp_seq`          1 Epiphany core
FFBP parallel (SPMD)      :mod:`repro.kernels.ffbp_spmd`         16 Epiphany cores
FFBP reference            :mod:`repro.kernels.cpu_ref`           1 i7 core
Autofocus sequential      :mod:`repro.kernels.autofocus_seq`     1 Epiphany core
Autofocus parallel (MPMD) :mod:`repro.kernels.autofocus_mpmd`    13 Epiphany cores
Autofocus reference       :mod:`repro.kernels.cpu_ref`           1 i7 core
========================  =====================================  ==========================

The shared per-sample operation mixes and workload definitions live in
:mod:`repro.kernels.opcounts`; every kernel describes its work with the
same mixes, so machine comparisons are apples-to-apples.
"""

from repro.kernels.application import run_focused_image
from repro.kernels.autofocus_mpmd import run_autofocus_mpmd, run_autofocus_scaled
from repro.kernels.autofocus_seq import run_autofocus_seq_epiphany
from repro.kernels.cpu_ref import run_autofocus_cpu, run_ffbp_cpu
from repro.kernels.ffbp_seq import run_ffbp_seq_epiphany
from repro.kernels.ffbp_spmd import run_ffbp_spmd
from repro.kernels.gbp_ref import run_gbp_cpu, run_gbp_spmd
from repro.kernels.opcounts import AutofocusWorkload, FfbpWorkload

__all__ = [
    "run_focused_image",
    "run_autofocus_scaled",
    "run_autofocus_mpmd",
    "run_autofocus_seq_epiphany",
    "run_autofocus_cpu",
    "run_ffbp_cpu",
    "run_ffbp_seq_epiphany",
    "run_ffbp_spmd",
    "run_gbp_cpu",
    "run_gbp_spmd",
    "AutofocusWorkload",
    "FfbpWorkload",
]
