"""Parallel MPMD autofocus on 13 Epiphany cores (paper Fig. 9).

The criterion calculation is split into a streaming pipeline:

- per input block, three *range interpolator* cores each resample a
  share of the block's rows (the paper: "the range interpolators
  perform the same operation on different rows and the first four
  columns of pixel data"),
- three *beam interpolator* cores per block each receive their range
  interpolated pixels and resample in the beam direction,
- one *correlator* core receives all six beam-interpolator streams,
  evaluates the focus criterion and accumulates the sum, writing the
  final value to SDRAM.

That is 2 x (3 + 3) + 1 = 13 cores; "the three spare cores can then be
used to execute the subsequent stages of SAR signal processing".
Placement keeps each producer adjacent to its consumer, mirroring the
paper's custom mapping that "avoids transactions with distant cores";
the naive alternative is available for the mapping ablation.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.machine.api import Machine, MachineContext, RunResult, store
from repro.machine.core import OpBlock
from repro.kernels.opcounts import (
    AUTOFOCUS_CORR,
    AUTOFOCUS_INTERP,
    COMPLEX_BYTES,
    AutofocusWorkload,
)
from repro.runtime.channels import Channel
from repro.runtime.mapping import Placement, TaskGraph, linear_place
from repro.runtime.mpmd import Pipeline, Task

BLOCKS = ("a", "b")
LANES = 3


def task_names() -> list[str]:
    """The 13 task names: ri/bi per block and lane, plus corr."""
    names = []
    for blk in BLOCKS:
        names += [f"ri_{blk}{i}" for i in range(LANES)]
        names += [f"bi_{blk}{i}" for i in range(LANES)]
    names.append("corr")
    return names


def autofocus_task_graph(work: AutofocusWorkload) -> TaskGraph:
    """Task graph with per-candidate traffic weights in bytes."""
    lane_pixels = work.pixels // LANES
    lane_bytes = lane_pixels * COMPLEX_BYTES
    edges: dict[tuple[str, str], float] = {}
    for blk in BLOCKS:
        for i in range(LANES):
            edges[(f"ri_{blk}{i}", f"bi_{blk}{i}")] = lane_bytes
            edges[(f"bi_{blk}{i}", "corr")] = lane_bytes
    return TaskGraph(tasks=tuple(task_names()), edges=edges)


def paper_placement(work: AutofocusWorkload, rows: int = 4, cols: int = 4) -> Placement:
    """The Fig. 9-style custom mapping: producers adjacent to consumers.

    Block a occupies columns 0-1, block b columns 2-3, with each range
    interpolator right next to its beam interpolator, and the
    correlator adjacent to the beam-interpolator columns.  Three cores
    remain unused.
    """
    graph = autofocus_task_graph(work)
    coords = {}
    for i in range(LANES):
        coords[f"ri_a{i}"] = (i, 0)
        coords[f"bi_a{i}"] = (i, 1)
        coords[f"bi_b{i}"] = (i, 2)
        coords[f"ri_b{i}"] = (i, 3)
    coords["corr"] = (3, 1)
    return Placement(graph, coords, rows, cols)


def naive_placement(work: AutofocusWorkload, rows: int = 4, cols: int = 4) -> Placement:
    """Row-major placement ignoring communication (mapping ablation)."""
    return linear_place(autofocus_task_graph(work), rows, cols)


def _ri_program(work: AutofocusWorkload, lane_pixels: int):
    def program(
        ctx: MachineContext,
        ins: dict[str, Channel],
        outs: dict[str, Channel],
    ) -> Iterator[Any]:
        (out,) = outs.values()
        lane_bytes = lane_pixels * COMPLEX_BYTES
        interp = AUTOFOCUS_INTERP.scaled(lane_pixels)
        # Input share arrives once from SDRAM; the paper also copies
        # input pixels to the adjacent core's local memory.
        ctx.local.allocate(2 * lane_bytes)
        yield from ctx.ext_scatter_read(lane_pixels)
        for _it in range(work.iterations):
            for _cand in range(work.n_candidates):
                yield from ctx.work(interp)
                yield from out.send(ctx, lane_bytes)
        ctx.local.free(2 * lane_bytes)

    return program


def _bi_program(work: AutofocusWorkload, lane_pixels: int):
    def program(
        ctx: MachineContext,
        ins: dict[str, Channel],
        outs: dict[str, Channel],
    ) -> Iterator[Any]:
        (inp,) = ins.values()
        (out,) = outs.values()
        lane_bytes = lane_pixels * COMPLEX_BYTES
        interp = AUTOFOCUS_INTERP.scaled(lane_pixels)
        for _it in range(work.iterations):
            for _cand in range(work.n_candidates):
                yield from inp.recv(ctx)
                yield from ctx.work(interp)
                yield from out.send(ctx, lane_bytes)

    return program


def _corr_program(work: AutofocusWorkload):
    def program(
        ctx: MachineContext,
        ins: dict[str, Channel],
        outs: dict[str, Channel],
    ) -> Iterator[Any]:
        inputs = list(ins.values())
        corr = AUTOFOCUS_CORR.scaled(work.corr_pixels_per_candidate)
        for _it in range(work.iterations):
            for _cand in range(work.n_candidates):
                for ch in inputs:
                    yield from ch.recv(ctx)
                yield from ctx.work(corr)
        # Final criterion value to SDRAM (posted write).
        yield from ctx.work(OpBlock(), [store(8)])

    return program


def build_pipeline(
    machine: Machine,
    work: AutofocusWorkload,
    placement: Placement | None = None,
    channel_capacity: int = 2,
    watchdog: int | None = None,
) -> Pipeline:
    """Assemble the 13-task pipeline on a machine."""
    if work.pixels % LANES != 0:
        raise ValueError(
            f"block of {work.pixels} pixels does not split over {LANES} lanes"
        )
    lane_pixels = work.pixels // LANES
    place = placement or paper_placement(
        work, machine.spec.mesh_rows, machine.spec.mesh_cols
    )
    payloads = {
        edge: lane_pixels * COMPLEX_BYTES for edge in place.graph.edges
    }
    tasks = []
    for name in task_names():
        if name == "corr":
            tasks.append(Task(name, _corr_program(work)))
        elif name.startswith("ri_"):
            tasks.append(Task(name, _ri_program(work, lane_pixels)))
        else:
            tasks.append(Task(name, _bi_program(work, lane_pixels)))
    return Pipeline(
        machine,
        tasks,
        place,
        channel_capacity=channel_capacity,
        payload_bytes=payloads,
        watchdog=watchdog,
    )


def run_autofocus_mpmd(
    machine: Machine,
    work: AutofocusWorkload,
    placement: Placement | None = None,
) -> RunResult:
    """Run the 13-core autofocus pipeline timing model."""
    return build_pipeline(machine, work, placement).run()


def run_autofocus_mpmd_resilient(
    machine: Machine,
    work: AutofocusWorkload,
    placement: Placement | None = None,
    watchdog: int | None = None,
) -> tuple[RunResult, dict[str, tuple[int, int]]]:
    """Autofocus with graceful degradation around dead cores.

    Machines that expose ``dead_cores()`` (a
    :class:`~repro.faults.inject.FaultyMachine` whose plan crashes a
    core before cycle 1) get the Fig. 9 mapping recomputed: the dead
    core's task moves onto one of the three spare cores (see
    :func:`repro.runtime.mapping.remap_placement`), trading adjacency
    for survival.  Returns the run result plus
    ``{task: (old_core, new_core)}`` for the re-mapped tasks; the
    throughput penalty is the cycle delta against a fault-free run
    (:func:`repro.faults.degraded.run_autofocus_degraded` reports it).
    """
    from repro.runtime.mapping import remap_placement

    place = placement or paper_placement(
        work, machine.spec.mesh_rows, machine.spec.mesh_cols
    )
    dead = tuple(getattr(machine, "dead_cores", tuple)())
    place, moved = remap_placement(place, dead)
    result = build_pipeline(machine, work, place, watchdog=watchdog).run()
    return result, moved


# ---------------------------------------------------------------------------
# Scaled pipelines for larger chips (the paper's 64-core outlook)
# ---------------------------------------------------------------------------

def scaled_task_graph(
    work: AutofocusWorkload, lanes: int, units: int
) -> TaskGraph:
    """Task graph for ``units`` replicated pipelines of ``lanes`` width.

    Each unit is an independent criterion calculation stream (in
    production, the "several flight path compensations tested before a
    merge" for different merges run concurrently); within a unit the
    interpolation lanes widen from the paper's 3 to ``lanes``.
    """
    if work.pixels % lanes != 0:
        raise ValueError(
            f"{work.pixels}-pixel blocks do not split over {lanes} lanes"
        )
    lane_bytes = (work.pixels // lanes) * COMPLEX_BYTES
    tasks: list[str] = []
    edges: dict[tuple[str, str], float] = {}
    for u in range(units):
        for blk in BLOCKS:
            for i in range(lanes):
                ri = f"u{u}_ri_{blk}{i}"
                bi = f"u{u}_bi_{blk}{i}"
                tasks += [ri, bi]
                edges[(ri, bi)] = lane_bytes
                edges[(bi, f"u{u}_corr")] = lane_bytes
        tasks.append(f"u{u}_corr")
    return TaskGraph(tuple(tasks), edges)


def build_scaled_pipeline(
    machine: Machine,
    work: AutofocusWorkload,
    lanes: int = 3,
    units: int = 1,
    channel_capacity: int = 2,
) -> Pipeline:
    """Assemble ``units`` x (2 x 2 x lanes + 1)-core pipelines.

    Placement is found by the greedy communication-aware optimiser --
    on an 8x8 chip there is no hand-drawn Fig. 9, so the mapping itself
    comes from :func:`repro.runtime.mapping.greedy_place`.
    """
    cores_needed = units * (4 * lanes + 1)
    if cores_needed > machine.n_cores:
        raise ValueError(
            f"{cores_needed} cores needed, chip has {machine.n_cores}"
        )
    from repro.runtime.mapping import greedy_place

    graph = scaled_task_graph(work, lanes, units)
    place = greedy_place(graph, machine.spec.mesh_rows, machine.spec.mesh_cols)
    lane_pixels = work.pixels // lanes
    payloads = {edge: lane_pixels * COMPLEX_BYTES for edge in graph.edges}
    tasks = []
    for name in graph.tasks:
        if name.endswith("corr"):
            tasks.append(Task(name, _corr_program(work)))
        elif "_ri_" in name:
            tasks.append(Task(name, _ri_program(work, lane_pixels)))
        else:
            tasks.append(Task(name, _bi_program(work, lane_pixels)))
    return Pipeline(
        machine,
        tasks,
        place,
        channel_capacity=channel_capacity,
        payload_bytes=payloads,
    )


def run_autofocus_scaled(
    machine: Machine,
    work: AutofocusWorkload,
    lanes: int = 3,
    units: int = 1,
) -> RunResult:
    """Run a scaled autofocus pipeline; throughput multiplies by
    ``units`` (each unit completes one criterion calculation)."""
    return build_scaled_pipeline(machine, work, lanes, units).run()
