"""Sequential autofocus criterion calculation on one Epiphany core.

Paper Section V-C / VI: the whole criterion calculation -- cubic
(Neville) range interpolation, beam interpolation, correlation and
summation, for every candidate compensation, over three iterations --
runs on a single core.  "Since the working data set of the kernel fits
completely in the on-die storage of Epiphany, the effects of memory
latency are not very visible": the two 6x6 input blocks and all
intermediates live in local memory, so the kernel is pure compute plus
one result write.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.machine.api import Machine, MachineContext, RunResult, store
from repro.kernels.opcounts import (
    AUTOFOCUS_CORR,
    AUTOFOCUS_INTERP,
    AutofocusWorkload,
)


def autofocus_seq_kernel(work: AutofocusWorkload):
    """Build the single-core kernel generator for a workload."""

    def kernel(ctx: MachineContext) -> Iterator[Any]:
        # Input blocks arrive once from SDRAM into local memory.
        ctx.local.allocate(2 * work.block_bytes)
        yield from ctx.ext_scatter_read(2 * work.pixels)
        interp = AUTOFOCUS_INTERP.scaled(work.interps_per_candidate)
        corr = AUTOFOCUS_CORR.scaled(work.corr_pixels_per_candidate)
        for _iteration in range(work.iterations):
            for _cand in range(work.n_candidates):
                yield from ctx.work(interp)
                yield from ctx.work(corr)
        # The final criterion value goes back to SDRAM (posted).
        yield from ctx.work(type(AUTOFOCUS_CORR)(), [store(8)])
        ctx.local.free(2 * work.block_bytes)

    return kernel


def run_autofocus_seq_epiphany(
    machine: Machine, work: AutofocusWorkload
) -> RunResult:
    """Run the sequential autofocus timing model on one Epiphany core."""
    return machine.run({0: autofocus_seq_kernel(work)})
