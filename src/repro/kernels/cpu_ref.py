"""Sequential reference implementations on the i7-like CPU model.

Paper Section VI: "We measure the results of the sequential versions of
the same algorithms on an Intel platform by executing them as single
threaded applications on an Intel Core i7-M620 CPU operating at
2.67 GHz."  The kernels emit the *same operation mixes* as the
Epiphany versions (the paper applies the same source-level
optimisations to both); only the machine model differs -- caches and
prefetch instead of scratchpads and scatter reads.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.machine.api import load, store
from repro.machine.cpu import CpuContext, CpuMachine, CpuRunResult
from repro.kernels.ffbp_common import FfbpPlan
from repro.kernels.opcounts import (
    AUTOFOCUS_CORR,
    AUTOFOCUS_INTERP,
    COMPLEX_BYTES,
    AutofocusWorkload,
    row_op_block,
)


def ffbp_cpu_kernel(plan: FfbpPlan):
    """Single-threaded FFBP: the same row loop, cache-backed memory.

    Child lookups are data-dependent gathers over the full child stage
    (working set = one whole image, 8 MB at paper scale -- beyond the
    4 MB L3, hence the DRAM-latency exposure that still leaves the i7
    2.8x ahead of a single cache-less Epiphany core).  Result rows are
    streaming stores.
    """
    image_bytes = plan.cfg.n_pulses * plan.cfg.n_ranges * COMPLEX_BYTES

    def kernel(ctx: CpuContext) -> Iterator[Any]:
        for stage in plan.stages:
            row_bytes = stage.n_ranges * COMPLEX_BYTES
            for k in range(stage.beams):
                block = row_op_block(stage.valid_frac[k], stage.n_ranges)
                mem = [
                    load(
                        float(stage.reads_row_total[k]) * COMPLEX_BYTES,
                        pattern="random",
                        working_set=float(image_bytes),
                        access_bytes=COMPLEX_BYTES,
                    ),
                    store(row_bytes),
                ]
                # The k-th row of every parent has identical cost; one
                # work item per (stage, k) scaled by the parent count
                # keeps the event count down without changing totals.
                for _ in range(stage.n_parents):
                    yield from ctx.work(block, mem)

    return kernel


def run_ffbp_cpu(machine: CpuMachine, plan: FfbpPlan) -> CpuRunResult:
    """Run the sequential FFBP timing model on the reference CPU."""
    return machine.run(ffbp_cpu_kernel(plan))


def autofocus_cpu_kernel(work: AutofocusWorkload):
    """Single-threaded autofocus criterion calculation.

    The working set (two 6x6 blocks and intermediates) fits in L1, so
    the kernel is compute-bound on both machines -- which is why the
    paper's sequential throughputs are comparable (21,600 vs 17,668
    pixels/s) despite the 2.67x clock gap.
    """

    def kernel(ctx: CpuContext) -> Iterator[Any]:
        yield from ctx.work(
            type(AUTOFOCUS_CORR)(),
            [load(2.0 * work.block_bytes, working_set=2.0 * work.block_bytes)],
        )
        for _it in range(work.iterations):
            for _cand in range(work.n_candidates):
                yield from ctx.work(
                    AUTOFOCUS_INTERP.scaled(work.interps_per_candidate)
                )
                yield from ctx.work(
                    AUTOFOCUS_CORR.scaled(work.corr_pixels_per_candidate)
                )
        yield from ctx.work(type(AUTOFOCUS_CORR)(), [store(8)])

    return kernel


def run_autofocus_cpu(machine: CpuMachine, work: AutofocusWorkload) -> CpuRunResult:
    """Run the sequential autofocus timing model on the reference CPU."""
    return machine.run(autofocus_cpu_kernel(work))
