"""Parallel SPMD FFBP on 16 Epiphany cores.

Paper Section V-B: the same program runs on every core; the resulting
image is divided into independent slices (paper Fig. 6); the
contributing subaperture data is prefetched into the two upper local
banks (16,016 bytes); result rows are posted to external SDRAM
("its effect is less pronounced because ... the write operation is
performed without stalling"); and a barrier separates merge iterations
(the next iteration reads what this one wrote).

During the first merges the prefetched window covers all contributing
data; at later stages the contributing samples spread over more child
beam rows than the window holds, and the spill becomes blocking
word-granular external reads -- "in the later iterations it still
requires contributing data to be read from the external memory".  The
split between the two is computed from the real index maps by
:mod:`repro.kernels.ffbp_common`.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.machine.api import Machine, MachineContext, RunResult, store
from repro.kernels.ffbp_common import FfbpPlan, StagePlan
from repro.kernels.opcounts import COMPLEX_BYTES, row_op_block
from repro.runtime.spmd import partition, run_spmd


def _core_row_spans(
    stage: StagePlan, core_id: int, n_cores: int
) -> list[tuple[int, int, int]]:
    """This core's share of a stage as ``(parent, k0, k1)`` spans.

    Rows are ordered parent-major; each core receives a balanced
    contiguous block, which maps to at most a few partial-parent spans.
    """
    sl = partition(stage.rows, n_cores)[core_id]
    spans: list[tuple[int, int, int]] = []
    row = sl.start
    while row < sl.stop:
        parent = row // stage.beams
        k0 = row % stage.beams
        k1 = min(stage.beams, k0 + (sl.stop - row))
        spans.append((parent, k0, k1))
        row += k1 - k0
    return spans


def ffbp_spmd_kernel(plan: FfbpPlan, n_cores: int, interpolation: str = "nearest"):
    """Build the per-core SPMD kernel generator for a plan.

    Per-beam row tables (op blocks, external-read counts, store lists)
    are resolved once here and shared by every core's generator: the
    blocks are memoised and frozen, so per-row lookups reduce to list
    indexing on both backends.
    """
    from repro.replay.fingerprint import UNCACHEABLE, fingerprint_value

    stage_rows = []
    for stage in plan.stages:
        row_bytes = stage.n_ranges * COMPLEX_BYTES
        stage_rows.append(
            (
                [
                    row_op_block(v, stage.n_ranges, interpolation)
                    for v in stage.valid_frac.tolist()
                ],
                [int(r) for r in stage.reads_row_ext.tolist()],
                (store(row_bytes),),
                row_bytes,
            )
        )

    def kernel(ctx: MachineContext) -> Iterator[Any]:
        core = ctx.core_id
        for stage, (blocks, reads_ext, row_store, row_bytes) in zip(
            plan.stages, stage_rows
        ):
            spans = _core_row_spans(stage, core, n_cores)
            n_rows = sum(k1 - k0 for _p, k0, k1 in spans)
            if n_rows == 0:
                yield from ctx.barrier()
                continue
            # Total window traffic this core needs this stage, spread
            # evenly across its rows and double-buffered with compute.
            prefetch_bytes = sum(
                stage.prefetch_rows_for_span(k0, k1) * row_bytes
                for _p, k0, k1 in spans
            )
            per_row_prefetch = prefetch_bytes / n_rows
            token = ctx.dma_prefetch(per_row_prefetch)
            for _parent, k0, k1 in spans:
                for k in range(k0, k1):
                    yield from ctx.dma_wait(token)
                    token = ctx.dma_prefetch(per_row_prefetch)
                    # Window spill: word-granular blocking reads.
                    yield from ctx.ext_scatter_read(reads_ext[k])
                    yield from ctx.work(blocks[k], row_store)
            yield from ctx.dma_wait(token)
            # Merge iterations are bulk-synchronous: the next stage
            # reads this stage's output from external memory.
            yield from ctx.barrier()

    # Everything the generator's behaviour depends on beyond source
    # code (which the memo layer's code_version covers) is the plan,
    # the core count and the interpolation mode: declare that as the
    # replay fingerprint so the cache key walk is O(plan), not
    # O(op-stream).  The verify gate's byte-identity oracles are the
    # backstop should this declaration ever go stale.
    plan_fp = fingerprint_value(plan)
    if plan_fp is not UNCACHEABLE:
        kernel.__replay_fp__ = ("ffbp-spmd", plan_fp, n_cores, interpolation)

    return kernel


def run_ffbp_spmd(
    machine: Machine,
    plan: FfbpPlan,
    n_cores: int | None = None,
    interpolation: str = "nearest",
) -> RunResult:
    """Run the parallel FFBP timing model on ``n_cores`` cores.

    Launches through :func:`repro.runtime.spmd.run_spmd`, so a backend
    deadlock (a barrier party lost to an injected fault) surfaces as a
    structured :class:`~repro.faults.report.DeadlockReport` rather than
    a bare engine error.
    """
    cores = n_cores if n_cores is not None else machine.n_cores
    if not 1 <= cores <= machine.n_cores:
        raise ValueError(f"n_cores must be in 1..{machine.n_cores}")
    kernel = ffbp_spmd_kernel(plan, cores, interpolation)
    return run_spmd(machine, cores, kernel)
