"""Sequential FFBP on one Epiphany core.

Paper Section V-B: "In the sequential version the complete algorithm is
executed on a single core of Epiphany."  The image data lives in
off-chip SDRAM; without caches, every child-sample lookup is a blocking
word read over the e-link ("the image data is stored in the off-chip
SDRAM whose access time is much longer"), while the result rows are
posted writes.  This is the configuration the paper measures at
3582 ms (Table I) -- ~3x slower than the i7 reference.
"""

from __future__ import annotations

from typing import Iterator

from repro.machine.chip import EpiphanyChip, EpiphanyContext, RunResult
from repro.machine.context import store
from repro.machine.core import OpBlock
from repro.machine.event import Waitable
from repro.kernels.ffbp_common import FfbpPlan
from repro.kernels.opcounts import COMPLEX_BYTES, row_op_block


def ffbp_seq_kernel(plan: FfbpPlan):
    """Build the single-core kernel generator for a plan."""

    def kernel(ctx: EpiphanyContext) -> Iterator[Waitable]:
        for stage in plan.stages:
            row_bytes = stage.n_ranges * COMPLEX_BYTES
            for _parent in range(stage.n_parents):
                for k in range(stage.beams):
                    # Geometry + combining for one output row; the
                    # child lookups go word-by-word to external memory.
                    yield from ctx.ext_scatter_read(int(stage.reads_row_total[k]))
                    block = row_op_block(stage.valid_frac[k], stage.n_ranges)
                    # Lookups were external, not local.
                    block = OpBlock(
                        flops=block.flops,
                        fmas=block.fmas,
                        sqrts=block.sqrts,
                        specials=block.specials,
                        int_ops=block.int_ops,
                        local_loads=0.0,
                        local_stores=block.local_stores,
                    )
                    yield from ctx.work(block, [store(row_bytes)])

    return kernel


def run_ffbp_seq_epiphany(chip: EpiphanyChip, plan: FfbpPlan) -> RunResult:
    """Run the sequential FFBP timing model on one Epiphany core."""
    return chip.run({0: ffbp_seq_kernel(plan)})
