"""Sequential FFBP on one Epiphany core.

Paper Section V-B: "In the sequential version the complete algorithm is
executed on a single core of Epiphany."  The image data lives in
off-chip SDRAM; without caches, every child-sample lookup is a blocking
word read over the e-link ("the image data is stored in the off-chip
SDRAM whose access time is much longer"), while the result rows are
posted writes.  This is the configuration the paper measures at
3582 ms (Table I) -- ~3x slower than the i7 reference.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.machine.api import Machine, MachineContext, RunResult, store
from repro.kernels.ffbp_common import FfbpPlan
from repro.kernels.opcounts import COMPLEX_BYTES, row_op_block


def ffbp_seq_kernel(plan: FfbpPlan):
    """Build the single-core kernel generator for a plan.

    Per-beam row tables are resolved once up front -- every parent of a
    stage repeats the same beam profile, so the per-row loop reduces to
    list indexing (the blocks are memoised and frozen).
    """
    stage_rows = []
    for stage in plan.stages:
        stage_rows.append(
            (
                [
                    # The child lookups go word-by-word to external
                    # memory (``external_lookups=True`` strips the
                    # local loads).
                    row_op_block(v, stage.n_ranges, external_lookups=True)
                    for v in stage.valid_frac.tolist()
                ],
                [int(r) for r in stage.reads_row_total.tolist()],
                (store(stage.n_ranges * COMPLEX_BYTES),),
            )
        )

    def kernel(ctx: MachineContext) -> Iterator[Any]:
        for stage, (blocks, reads_total, row_store) in zip(
            plan.stages, stage_rows
        ):
            for _parent in range(stage.n_parents):
                for k in range(stage.beams):
                    # Geometry + combining for one output row.
                    yield from ctx.ext_scatter_read(reads_total[k])
                    yield from ctx.work(blocks[k], row_store)

    return kernel


def run_ffbp_seq_epiphany(machine: Machine, plan: FfbpPlan) -> RunResult:
    """Run the sequential FFBP timing model on one Epiphany core."""
    return machine.run({0: ffbp_seq_kernel(plan)})
