"""Sharded FFBP executive over a multi-chip fabric (timing layer).

The timing/energy counterpart of :mod:`repro.sar.shard`: the same
shard-local / top-level split of the subaperture tree, phased over the
chips of a :class:`~repro.machine.fabric.FabricMachine`.

Dataflow (``F`` chips)::

    chip 0:  [local merges 1..B]--(wait)--[top merges B+1..S]
    chip 1:  [local merges 1..B]--e-link-->|
    ...                                    | start_top = max(arrivals)
    chip F-1:[local merges 1..B]--e-link-->|

Phase 1 runs the *real* SPMD kernel (:func:`~repro.kernels.ffbp_spmd.
run_ffbp_spmd`) per chip on a shard-local plan -- the full plan's
stages with ``n_parents`` divided by ``F``, valid because the per-row
statistics of a :class:`~repro.kernels.ffbp_common.StagePlan` are
parent-independent.  Phase 2 charges each chip's boundary subaperture
crossing ``|f - 0|`` e-links (latency + bandwidth from
:class:`~repro.machine.specs.ChipLinkSpec`; energy per byte per link),
consulting the fabric's ``chiplink_outcome`` hook so injected
``chiplink:`` faults stall or drop the transfer (a drop surfaces as a
structured :class:`~repro.faults.report.FaultReport`, kind
``"chiplink-drop"``).  Phase 3 advances chip 0's clock to the last
arrival and runs the top merges there -- again the real kernel, so the
analytic-vs-event cycle/energy banding of the single-chip oracles
carries over to fabrics unchanged.

Energy assembly respects the cumulative-meter contract: chip 0's
top-phase :class:`~repro.machine.api.RunResult` already includes its
phase-1 activity and the idle wait (backends carry clock *and* meter
across runs), so the fabric total adds only the other chips' phase-1
energies and the e-link transfer energy.
"""

from __future__ import annotations

from dataclasses import replace

from repro.faults.report import FaultReport
from repro.geometry.apertures import SubapertureTree
from repro.kernels.ffbp_common import FfbpPlan
from repro.kernels.ffbp_spmd import run_ffbp_spmd
from repro.machine.api import Machine, RunResult
from repro.sar.shard import shard_boundary_level

__all__ = ["split_plan", "run_ffbp_fabric", "fabric_chips"]

COMPLEX_BYTES = 8


def fabric_chips(machine: Machine):
    """The per-chip machines behind ``machine``, or None.

    Fabric-shaped machines (:class:`~repro.machine.fabric.
    FabricMachine`, or a :class:`~repro.faults.inject.FaultyMachine`
    wrapping one) expose ``chips`` and a multi-chip spec; anything else
    is a single chip and runs the plain SPMD path.
    """
    chips = getattr(machine, "chips", None)
    if chips is None or getattr(machine.spec, "n_chips", 1) < 1:
        return None
    return chips


def split_plan(plan: FfbpPlan, n_chips: int) -> tuple[FfbpPlan, FfbpPlan]:
    """Split a full plan into (shard-local plan, top-level plan).

    The local plan holds levels ``1..boundary`` with ``n_parents``
    divided by ``n_chips`` (each chip merges only its own pulse
    block); the top plan holds the cross-chip levels.  Valid because a
    :class:`~repro.kernels.ffbp_common.StagePlan`'s per-row arrays
    describe one parent's beams and apply to every parent identically.
    """
    cfg = plan.cfg
    tree = SubapertureTree(cfg.n_pulses, cfg.spacing, cfg.merge_base)
    boundary = shard_boundary_level(tree, n_chips)
    local = tuple(
        replace(s, n_parents=s.n_parents // n_chips)
        for s in plan.stages[:boundary]
    )
    top = plan.stages[boundary:]
    return (
        FfbpPlan(cfg=cfg, stages=local, window_bytes=plan.window_bytes),
        FfbpPlan(cfg=cfg, stages=top, window_bytes=plan.window_bytes),
    )


def run_ffbp_fabric(
    machine: Machine,
    plan: FfbpPlan,
    n_cores: int | None = None,
    interpolation: str = "nearest",
) -> RunResult:
    """Run the sharded FFBP timing model across a fabric's chips.

    ``n_cores`` is the per-chip SPMD width (defaults to a full chip).
    On a single-chip machine this is exactly
    :func:`~repro.kernels.ffbp_spmd.run_ffbp_spmd`; on a 1-chip fabric
    it runs the full plan on chip 0 -- same kernel, same clock, zero
    wrapper overhead (the E64 parity test pins that down).
    """
    chips = fabric_chips(machine)
    if chips is None:
        return run_ffbp_spmd(machine, plan, n_cores, interpolation)
    spec = machine.spec
    n_chips = spec.n_chips
    cores = n_cores if n_cores is not None else spec.cores_per_chip
    if not 1 <= cores <= spec.cores_per_chip:
        raise ValueError(
            f"n_cores must be in 1..{spec.cores_per_chip} (per chip)"
        )
    local_plan, top_plan = split_plan(plan, n_chips)

    # -- phase 1: shard-local merges, every chip independently ----------
    phase1 = [
        run_ffbp_spmd(chip, local_plan, cores, interpolation)
        for chip in chips
    ]

    # -- phase 2: boundary subapertures cross to chip 0 ------------------
    if local_plan.stages:
        last = local_plan.stages[-1]
        nbytes = last.n_parents * last.beams * last.n_ranges * COMPLEX_BYTES
    else:  # F == n_pulses: ship the raw pulse block
        nbytes = (plan.cfg.n_pulses // n_chips) * plan.cfg.n_ranges * (
            COMPLEX_BYTES
        )
    link_energy = 0.0
    start_top = chips[0].now
    for f in range(1, n_chips):
        extra, dropped, clause = machine.chiplink_outcome(f, 0)
        if dropped:
            raise FaultReport(
                kind="chiplink-drop",
                detail=(
                    f"boundary subaperture from chip {f} to chip 0 "
                    f"({nbytes} bytes) dropped on the e-link"
                ),
                cycle=chips[f].now,
                fault=clause,
            )
        arrival = (
            chips[f].now
            + machine.chiplink_cycles(nbytes, n_links=f)
            + extra
        )
        link_energy += machine.chiplink_energy_j(nbytes, n_links=f)
        if arrival > start_top:
            start_top = arrival
    chips[0].advance(start_top - chips[0].now, busy_cores=0)

    # -- phase 3: top-level merges on chip 0 ------------------------------
    if top_plan.stages:
        top = run_ffbp_spmd(chips[0], top_plan, cores, interpolation)
    else:
        top = phase1[0]

    # Chip 0's meter and traces are cumulative across its two runs (and
    # the idle advance), so `top` already accounts for all of chip 0.
    cycles = top.cycles
    seconds = cycles / spec.clock_hz
    energy = (
        top.energy_joules
        + sum(r.energy_joules for r in phase1[1:])
        + link_energy
    )
    return RunResult(
        cycles=cycles,
        seconds=seconds,
        energy_joules=energy,
        average_power_w=energy / seconds if seconds > 0 else 0.0,
        traces=tuple(top.traces)
        + tuple(t for r in phase1[1:] for t in r.traces),
        results=top.results,
        stalled=top.stalled or any(r.stalled for r in phase1),
        wait_states=top.wait_states,
    )
