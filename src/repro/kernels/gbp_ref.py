"""Global back-projection timing kernels.

GBP is the quality baseline of paper Fig. 7 and the complexity
motivation for FFBP (Section I: FFBP "reduces the performance
requirements significantly relative to those for the conventional
Global Back-projection").  These kernels let the simulator quantify
that: per output pixel GBP integrates *every* pulse (N element
combinings), where FFBP needs ``merge_base * log_b N`` spread over the
stages.

The per-pixel-per-pulse op mix matches the FFBP element combining
minus the arccos (GBP needs only the exact range, not the child angle
lookup): one hypot-style distance (2 FMAs + sqrt), index arithmetic,
one data fetch and one accumulate.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.kernels.opcounts import COMPLEX_BYTES
from repro.machine.api import Machine, MachineContext, RunResult, load, store
from repro.machine.core import OpBlock
from repro.machine.cpu import CpuContext, CpuMachine, CpuRunResult
from repro.runtime.spmd import partition
from repro.sar.config import RadarConfig

GBP_SAMPLE_PER_PULSE = OpBlock(
    flops=2.0,  # complex accumulate
    fmas=2.0,  # dx*dx + dy*dy
    sqrts=1.0,  # the range
    int_ops=6.0,  # bin index + bounds check
    local_loads=1.0,
)
"""Work per output pixel per integrated pulse."""


def gbp_pixel_ops(n_pulses: int) -> OpBlock:
    """All arithmetic for one GBP output pixel."""
    return GBP_SAMPLE_PER_PULSE.scaled(n_pulses) + OpBlock(local_stores=1.0)


def gbp_cpu_kernel(cfg: RadarConfig, n_pixels: int | None = None):
    """Single-threaded GBP on the reference CPU model.

    Per pulse, the accessed range samples sweep a contiguous-ish curve
    through that pulse's range profile, so the access pattern is
    random at image working-set scale (like FFBP's gathers).
    """
    pixels = n_pixels if n_pixels is not None else cfg.n_pulses * cfg.n_ranges
    image_bytes = cfg.n_pulses * cfg.n_ranges * COMPLEX_BYTES

    def kernel(ctx: CpuContext) -> Iterator[Any]:
        # One work item per pulse sweep over all pixels.
        per_pulse = GBP_SAMPLE_PER_PULSE.scaled(pixels)
        for _pulse in range(cfg.n_pulses):
            yield from ctx.work(
                per_pulse,
                [
                    load(
                        pixels * COMPLEX_BYTES,
                        pattern="random",
                        working_set=float(image_bytes),
                        access_bytes=COMPLEX_BYTES,
                    )
                ],
            )
        yield from ctx.work(OpBlock(), [store(pixels * COMPLEX_BYTES)])

    return kernel


def run_gbp_cpu(
    machine: CpuMachine, cfg: RadarConfig, n_pixels: int | None = None
) -> CpuRunResult:
    """Run the sequential GBP timing model on the reference CPU."""
    return machine.run(gbp_cpu_kernel(cfg, n_pixels))


def gbp_spmd_kernel(cfg: RadarConfig, n_cores: int, n_pixels: int | None = None):
    """SPMD GBP on the Epiphany model.

    Pixels partition perfectly (no inter-pixel dependency at all);
    each core streams every pulse's range profile through its local
    banks via DMA (GBP's access per pulse is a bounded swath of bins,
    so streaming works — unlike FFBP's late-stage scatter), computes
    its pixel slice, and posts results.
    """
    pixels = n_pixels if n_pixels is not None else cfg.n_pulses * cfg.n_ranges
    row_bytes = cfg.n_ranges * COMPLEX_BYTES

    def kernel(ctx: MachineContext) -> Iterator[Any]:
        share = partition(pixels, n_cores)[ctx.core_id]
        my_pixels = share.stop - share.start
        if my_pixels == 0:
            yield from ctx.barrier()
            return
        token = ctx.dma_prefetch(row_bytes)
        for _pulse in range(cfg.n_pulses):
            yield from ctx.dma_wait(token)
            token = ctx.dma_prefetch(row_bytes)
            yield from ctx.work(GBP_SAMPLE_PER_PULSE.scaled(my_pixels))
        yield from ctx.dma_wait(token)
        yield from ctx.work(OpBlock(), [store(my_pixels * COMPLEX_BYTES)])
        yield from ctx.barrier()

    return kernel


def run_gbp_spmd(
    machine: Machine,
    cfg: RadarConfig,
    n_cores: int | None = None,
    n_pixels: int | None = None,
) -> RunResult:
    """Run the parallel GBP timing model."""
    cores = n_cores if n_cores is not None else machine.n_cores
    kernel = gbp_spmd_kernel(cfg, cores, n_pixels)
    return machine.run({c: kernel for c in range(cores)})
