"""SAR geometry substrate.

Provides the geometric building blocks the paper's algorithms rest on:

- :mod:`repro.geometry.trajectory` -- platform flight paths (ideal linear
  stripmap tracks and perturbed tracks that motivate autofocus),
- :mod:`repro.geometry.scene` -- point-target scenes and ground grids,
- :mod:`repro.geometry.apertures` -- the dyadic subaperture factorisation
  tree used by fast factorized back-projection (paper Fig. 3a),
- :mod:`repro.geometry.cosine` -- the cosine-theorem index equations
  (paper eqs. 1-4) that map a parent polar sample onto its two
  contributing child subaperture samples (paper Fig. 3b).
"""

from repro.geometry.antenna import (
    Antenna,
    IsotropicAntenna,
    SpotlightAntenna,
    StripmapAntenna,
)
from repro.geometry.apertures import ApertureStage, SubapertureTree
from repro.geometry.cosine import child_angles, child_ranges, combine_geometry
from repro.geometry.scene import PointTarget, Scene
from repro.geometry.trajectory import (
    LinearTrajectory,
    PerturbedTrajectory,
    Trajectory,
)

__all__ = [
    "Antenna",
    "IsotropicAntenna",
    "SpotlightAntenna",
    "StripmapAntenna",
    "ApertureStage",
    "SubapertureTree",
    "child_angles",
    "child_ranges",
    "combine_geometry",
    "PointTarget",
    "Scene",
    "LinearTrajectory",
    "PerturbedTrajectory",
    "Trajectory",
]
