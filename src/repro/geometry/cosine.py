"""Cosine-theorem index equations (paper eqs. 1-4).

During an FFBP merge two child subapertures, whose phase centres sit a
distance ``l/2`` on either side of the parent phase centre along the
flight axis, contribute to each parent polar sample ``(r, theta)``
(paper Fig. 3b).  ``l`` is the child subaperture length, so the child
phase-centre offsets from the parent centre are ``-l/2`` (the earlier
child, subscript 1) and ``+l/2`` (the later child, subscript 2).
Angles are measured from the flight axis (+x), so broadside is
``pi/2``.

The paper's equations, reproduced exactly:

.. math::

    r_1      &= \\sqrt{r^2 + (l/2)^2 - 2 r (l/2) \\cos(\\pi - \\theta)} \\\\
    r_2      &= \\sqrt{r^2 + (l/2)^2 - 2 r (l/2) \\cos\\theta} \\\\
    \\theta_1 &= \\cos^{-1}\\!\\big((r_1^2 + (l/2)^2 - r^2) / (r_1 l)\\big) \\\\
    \\theta_2 &= \\pi - \\cos^{-1}\\!\\big((r_2^2 + (l/2)^2 - r^2) / (r_2 l)\\big)

All functions are vectorised over ``r`` and ``theta`` and broadcast
against each other.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np


class ChildSample(NamedTuple):
    """Polar coordinates of one contributing child sample."""

    r: np.ndarray
    theta: np.ndarray


class CombineGeometry(NamedTuple):
    """Both children's polar coordinates for a parent sample set."""

    first: ChildSample
    second: ChildSample


def child_ranges(
    r: np.ndarray, theta: np.ndarray, l: float
) -> tuple[np.ndarray, np.ndarray]:
    """Ranges ``(r1, r2)`` from the two child phase centres (eqs. 1-2).

    Parameters
    ----------
    r, theta:
        Parent polar coordinates (metres, radians from the flight axis).
    l:
        Child subaperture length in metres; child centres sit at
        ``-l/2`` and ``+l/2`` from the parent centre.
    """
    r = np.asarray(r, dtype=np.float64)
    theta = np.asarray(theta, dtype=np.float64)
    half = 0.5 * l
    # cos(pi - theta) = -cos(theta); writing both out keeps the code a
    # literal transcription of eqs. 1 and 2.
    r1 = np.sqrt(r * r + half * half - 2.0 * r * half * np.cos(np.pi - theta))
    r2 = np.sqrt(r * r + half * half - 2.0 * r * half * np.cos(theta))
    return r1, r2


def child_angles(
    r: np.ndarray,
    theta: np.ndarray,
    l: float,
    r1: np.ndarray | None = None,
    r2: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Angles ``(theta1, theta2)`` at the child phase centres (eqs. 3-4).

    ``r1``/``r2`` may be passed to reuse values from
    :func:`child_ranges`; otherwise they are recomputed.
    """
    r = np.asarray(r, dtype=np.float64)
    theta = np.asarray(theta, dtype=np.float64)
    if r1 is None or r2 is None:
        r1, r2 = child_ranges(r, theta, l)
    half = 0.5 * l
    # Guard the arccos argument against round-off excursions past +-1.
    c1 = np.clip((r1 * r1 + half * half - r * r) / (r1 * l), -1.0, 1.0)
    c2 = np.clip((r2 * r2 + half * half - r * r) / (r2 * l), -1.0, 1.0)
    theta1 = np.arccos(c1)
    theta2 = np.pi - np.arccos(c2)
    return theta1, theta2


def combine_geometry(r: np.ndarray, theta: np.ndarray, l: float) -> CombineGeometry:
    """Full element-combining geometry for a parent sample set.

    Evaluates eqs. 1-4 once, sharing the range computation, and returns
    the polar coordinates of both contributing child samples.
    """
    if l <= 0:
        raise ValueError(f"child subaperture length must be positive, got {l}")
    r1, r2 = child_ranges(r, theta, l)
    theta1, theta2 = child_angles(r, theta, l, r1=r1, r2=r2)
    return CombineGeometry(ChildSample(r1, theta1), ChildSample(r2, theta2))


def exact_child_geometry(
    r: np.ndarray, theta: np.ndarray, offset: float
) -> ChildSample:
    """Reference child geometry by direct coordinate transform.

    The point at parent polar coordinates ``(r, theta)`` lies at
    Cartesian ``(r cos(theta), r sin(theta))`` relative to the parent
    phase centre; a child phase centre displaced by ``offset`` along the
    flight axis sees it at the returned polar coordinates.  Used to
    cross-validate the cosine-theorem transcription in tests.
    """
    r = np.asarray(r, dtype=np.float64)
    theta = np.asarray(theta, dtype=np.float64)
    x = r * np.cos(theta) - offset
    y = r * np.sin(theta)
    return ChildSample(np.hypot(x, y), np.arctan2(y, x))
