"""Antenna beam patterns and pointing modes.

Paper Fig. 2 / Section II: stripmap SAR "transmits a relatively wide
beam to the ground, illuminating each resolution cell over a long
period of time"; the related work (Przytula et al.) covers "both
stripmap and spotlight modes of operation".  The antenna model supplies
the two-way gain each pulse applies to each target:

- :class:`StripmapAntenna` -- fixed broadside pointing, so a target is
  illuminated only while the platform passes it (the finite beamwidth
  is what truncates the synthetic aperture in real systems),
- :class:`SpotlightAntenna` -- steered at a fixed scene point, keeping
  the patch illuminated for the whole collection,
- :class:`IsotropicAntenna` -- the idealisation the rest of the test
  suite uses (unit gain everywhere).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


class Antenna(abc.ABC):
    """Two-way amplitude gain versus geometry."""

    @abc.abstractmethod
    def gain(
        self, antenna_pos: np.ndarray, target_pos: np.ndarray
    ) -> np.ndarray:
        """Two-way amplitude gain for ``(P, 2)`` antenna positions
        against ``(T, 2)`` target positions; returns ``(P, T)``."""

    @staticmethod
    def _angles(antenna_pos: np.ndarray, target_pos: np.ndarray) -> np.ndarray:
        d = target_pos[None, :, :] - antenna_pos[:, None, :]
        return np.arctan2(d[..., 1], d[..., 0])


@dataclass(frozen=True)
class IsotropicAntenna(Antenna):
    """Unit gain in every direction (the idealised default)."""

    def gain(self, antenna_pos, target_pos):
        antenna_pos = np.asarray(antenna_pos, dtype=np.float64)
        target_pos = np.asarray(target_pos, dtype=np.float64)
        return np.ones((antenna_pos.shape[0], target_pos.shape[0]))


def _pattern(offset: np.ndarray, beamwidth: float) -> np.ndarray:
    """Two-way power-normalised amplitude pattern vs angular offset.

    A cosine-tapered mainlobe with the -3 dB (two-way) point at
    ``beamwidth / 2``; zero outside the first null.  A deliberately
    simple shape -- the experiments depend on the *support*, not the
    exact taper.
    """
    x = np.abs(offset) / (beamwidth / 2.0)
    amp = np.cos(np.pi / 4.0 * np.minimum(x, 2.0)) ** 2
    return np.where(x <= 2.0, amp, 0.0)


@dataclass(frozen=True)
class StripmapAntenna(Antenna):
    """Broadside-fixed beam of a given azimuth beamwidth (radians)."""

    beamwidth: float
    boresight: float = np.pi / 2

    def __post_init__(self) -> None:
        if not 0 < self.beamwidth < np.pi:
            raise ValueError(f"beamwidth must be in (0, pi), got {self.beamwidth}")

    def gain(self, antenna_pos, target_pos):
        antenna_pos = np.asarray(antenna_pos, dtype=np.float64)
        target_pos = np.asarray(target_pos, dtype=np.float64)
        angles = self._angles(antenna_pos, target_pos)
        return _pattern(angles - self.boresight, self.beamwidth)


@dataclass(frozen=True)
class SpotlightAntenna(Antenna):
    """Beam steered at a fixed scene point for the whole collection."""

    beamwidth: float
    focus_point: tuple[float, float]

    def __post_init__(self) -> None:
        if not 0 < self.beamwidth < np.pi:
            raise ValueError(f"beamwidth must be in (0, pi), got {self.beamwidth}")

    def gain(self, antenna_pos, target_pos):
        antenna_pos = np.asarray(antenna_pos, dtype=np.float64)
        target_pos = np.asarray(target_pos, dtype=np.float64)
        fp = np.asarray(self.focus_point, dtype=np.float64)
        steer = self._angles(antenna_pos, fp[None, :])[:, 0]  # (P,)
        angles = self._angles(antenna_pos, target_pos)  # (P, T)
        return _pattern(angles - steer[:, None], self.beamwidth)
