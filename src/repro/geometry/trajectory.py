"""Platform flight trajectories.

Stripmap SAR (paper Fig. 2) assumes the platform moves along a nominally
linear track while transmitting pulses at uniform along-track spacing.
Time-domain back-projection can compensate non-linear tracks; the
autofocus case study exists precisely because the real track deviates
from the assumed one.  We therefore model both:

- :class:`LinearTrajectory` -- the ideal track the processor assumes,
- :class:`PerturbedTrajectory` -- the true track with a smooth
  cross-track deviation (the "path error" of paper Section II-A, whose
  effect on a small subimage is approximately a linear shift).

Coordinates are 2-D ground coordinates ``(x, y)`` in metres: ``x`` is
along-track, ``y`` is cross-track (range direction).  A 2-D geometry is
sufficient for every computation in the paper (the paper's own stimulus
is a flat 2-D scene).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


class Trajectory(abc.ABC):
    """A platform track sampled at the pulse transmission instants.

    Concrete trajectories expose ``positions(n)``: the antenna phase
    centre position for each of the ``n`` transmitted pulses, as an
    ``(n, 2)`` float array.
    """

    @abc.abstractmethod
    def positions(self, n_pulses: int) -> np.ndarray:
        """Return the ``(n_pulses, 2)`` antenna positions in metres."""

    def aperture_length(self, n_pulses: int) -> float:
        """Along-track extent of the synthetic aperture in metres."""
        pos = self.positions(n_pulses)
        return float(pos[-1, 0] - pos[0, 0])

    def center(self, n_pulses: int) -> np.ndarray:
        """Mean antenna position: the full-aperture phase centre."""
        return self.positions(n_pulses).mean(axis=0)


@dataclass(frozen=True)
class LinearTrajectory(Trajectory):
    """Ideal straight, constant-speed track along the x axis.

    Parameters
    ----------
    spacing:
        Along-track distance between consecutive pulses (metres).
    y:
        Constant cross-track offset of the track (metres); normally 0.
    x0:
        Along-track position of the first pulse (metres).
    """

    spacing: float = 1.0
    y: float = 0.0
    x0: float = 0.0

    def __post_init__(self) -> None:
        if self.spacing <= 0:
            raise ValueError(f"pulse spacing must be positive, got {self.spacing}")

    def positions(self, n_pulses: int) -> np.ndarray:
        if n_pulses <= 0:
            raise ValueError(f"n_pulses must be positive, got {n_pulses}")
        x = self.x0 + self.spacing * np.arange(n_pulses, dtype=np.float64)
        y = np.full(n_pulses, float(self.y))
        return np.stack([x, y], axis=1)


@dataclass(frozen=True)
class PerturbedTrajectory(Trajectory):
    """A linear track plus a smooth cross-track deviation.

    The deviation is a sum of low-order sinusoids, a standard surrogate
    for slow uncompensated platform motion.  Over the extent of a single
    small subaperture the deviation is locally well approximated by a
    linear function of along-track position -- which is exactly the
    "path error ~ linear shift in the data set" approximation the
    paper's autofocus criterion relies on.

    Parameters
    ----------
    base:
        The nominal linear trajectory.
    amplitude:
        Peak cross-track deviation (metres).
    wavelength:
        Along-track wavelength of the dominant deviation (metres).
    phase:
        Phase offset of the deviation (radians).
    """

    base: LinearTrajectory = LinearTrajectory()
    amplitude: float = 1.0
    wavelength: float = 512.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.wavelength <= 0:
            raise ValueError(f"wavelength must be positive, got {self.wavelength}")

    def positions(self, n_pulses: int) -> np.ndarray:
        pos = self.base.positions(n_pulses)
        dev = self.amplitude * np.sin(
            2.0 * np.pi * pos[:, 0] / self.wavelength + self.phase
        )
        out = pos.copy()
        out[:, 1] += dev
        return out

    def deviation(self, n_pulses: int) -> np.ndarray:
        """Cross-track deviation from the nominal track, per pulse."""
        return self.positions(n_pulses)[:, 1] - self.base.positions(n_pulses)[:, 1]
