"""Point-target scenes.

The paper validates its implementations on "a test scenario of six
target points" (Section V-B, Fig. 7).  A scene is a set of ideal point
scatterers with complex reflectivity on flat ground.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class PointTarget:
    """An ideal point scatterer.

    Parameters
    ----------
    x, y:
        Ground position in metres (x along-track, y cross-track).
    amplitude:
        Complex reflectivity; magnitude scales the echo, phase is
        carried through the whole chain.
    """

    x: float
    y: float
    amplitude: complex = 1.0 + 0.0j

    @property
    def position(self) -> np.ndarray:
        return np.array([self.x, self.y], dtype=np.float64)


@dataclass(frozen=True)
class Scene:
    """A collection of point targets.

    The default factory :meth:`six_targets` mirrors the paper's
    validation stimulus: six point targets spread over the imaged area.
    """

    targets: tuple[PointTarget, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.targets, tuple):
            object.__setattr__(self, "targets", tuple(self.targets))

    def __len__(self) -> int:
        return len(self.targets)

    def __iter__(self):
        return iter(self.targets)

    def positions(self) -> np.ndarray:
        """``(n_targets, 2)`` array of target positions."""
        if not self.targets:
            return np.zeros((0, 2))
        return np.stack([t.position for t in self.targets])

    def amplitudes(self) -> np.ndarray:
        """``(n_targets,)`` complex array of reflectivities."""
        return np.array([t.amplitude for t in self.targets], dtype=np.complex128)

    @classmethod
    def six_targets(
        cls,
        x_center: float,
        y_center: float,
        x_extent: float,
        y_extent: float,
    ) -> "Scene":
        """The paper's six-point validation scene.

        Six unit scatterers arranged on a 3x2 lattice covering the
        central portion of the imaged area, so that each produces a
        clearly separated range-migration curve in the raw data
        (paper Fig. 7a) and a focused point after back-projection.
        """
        xs = x_center + x_extent * np.array([-0.3, 0.0, 0.3])
        ys = y_center + y_extent * np.array([-0.25, 0.25])
        targets = tuple(
            PointTarget(float(x), float(y)) for y in ys for x in xs
        )
        return cls(targets)

    @classmethod
    def single(cls, x: float, y: float, amplitude: complex = 1.0 + 0.0j) -> "Scene":
        """A one-target scene, convenient for focused-peak assertions."""
        return cls((PointTarget(x, y, amplitude),))

    @classmethod
    def random_clutter(
        cls,
        x_center: float,
        y_center: float,
        x_extent: float,
        y_extent: float,
        n_targets: int = 64,
        seed: int = 0,
        mean_amplitude: float = 0.2,
    ) -> "Scene":
        """A field of random weak scatterers (distributed clutter).

        Rayleigh-amplitude, uniform-phase scatterers spread uniformly
        over the area -- the textbook surrogate for terrain clutter.
        Useful for exercising autofocus and quality metrics on
        distributed (non-point) scenes.  Deterministic per ``seed``.
        """
        if n_targets < 1:
            raise ValueError("need at least one clutter scatterer")
        rng = np.random.default_rng(seed)
        xs = x_center + x_extent * (rng.random(n_targets) - 0.5)
        ys = y_center + y_extent * (rng.random(n_targets) - 0.5)
        amps = mean_amplitude * rng.rayleigh(1.0, n_targets)
        phases = rng.uniform(0.0, 2.0 * np.pi, n_targets)
        targets = tuple(
            PointTarget(float(x), float(y), complex(a * np.exp(1j * p)))
            for x, y, a, p in zip(xs, ys, amps, phases)
        )
        return cls(targets)

    def with_target(self, target: PointTarget) -> "Scene":
        """A new scene with one more target (e.g. a bright reference
        scatterer embedded in clutter)."""
        return Scene(self.targets + (target,))
