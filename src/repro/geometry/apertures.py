"""Dyadic subaperture factorisation (paper Fig. 3a).

FFBP starts from many single-pulse subapertures with low angular
resolution and iteratively merges groups of ``merge_base`` neighbours
into longer subapertures with proportionally higher angular resolution,
until one full aperture remains.  This module computes the static
geometry of that tree: how many subapertures each stage has, where
their phase centres sit, their lengths, and how many beams each carries.

The paper uses merge base 2 and 1024 pulses, giving ten merge
iterations; the classes here support any integer base >= 2 so the
merge-base ablation can be expressed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def num_stages(n_pulses: int, merge_base: int) -> int:
    """Number of merge iterations to reach the full aperture.

    ``n_pulses`` must be an exact power of ``merge_base`` (the paper's
    1024 = 2**10); anything else would leave a ragged final merge the
    paper does not define.
    """
    if merge_base < 2:
        raise ValueError(f"merge base must be >= 2, got {merge_base}")
    if n_pulses < 1:
        raise ValueError(f"n_pulses must be positive, got {n_pulses}")
    stages = 0
    n = n_pulses
    while n > 1:
        if n % merge_base != 0:
            raise ValueError(
                f"n_pulses={n_pulses} is not a power of merge_base={merge_base}"
            )
        n //= merge_base
        stages += 1
    return stages


@dataclass(frozen=True)
class ApertureStage:
    """Geometry of one factorisation stage.

    Stage ``level`` 0 is the initial state (one subaperture per pulse,
    one beam each); stage ``level == num_stages`` is the full aperture.

    Attributes
    ----------
    level:
        Merge iterations applied so far.
    n_subapertures:
        Number of subapertures at this stage.
    pulses_per_subaperture:
        Pulses contributing to each subaperture.
    beams:
        Angular samples each subaperture carries.  Beams multiply by
        the merge base at every level so that angular sampling keeps
        pace with the growing aperture length.
    length:
        Subaperture length in metres (pulses_per_subaperture * spacing).
    centers:
        ``(n_subapertures,)`` along-track phase-centre coordinates.
    """

    level: int
    n_subapertures: int
    pulses_per_subaperture: int
    beams: int
    length: float
    centers: np.ndarray

    def center_of(self, index: int) -> float:
        """Phase-centre x coordinate of subaperture ``index``."""
        return float(self.centers[index])


class SubapertureTree:
    """The full factorisation schedule for an aperture.

    Parameters
    ----------
    n_pulses:
        Total pulses in the aperture (a power of ``merge_base``).
    spacing:
        Along-track pulse spacing in metres.
    merge_base:
        Number of children merged per parent (paper: 2).
    x0:
        Along-track coordinate of the first pulse.
    """

    def __init__(
        self,
        n_pulses: int,
        spacing: float,
        merge_base: int = 2,
        x0: float = 0.0,
    ) -> None:
        if spacing <= 0:
            raise ValueError(f"spacing must be positive, got {spacing}")
        self.n_pulses = int(n_pulses)
        self.spacing = float(spacing)
        self.merge_base = int(merge_base)
        self.x0 = float(x0)
        self.n_stages = num_stages(self.n_pulses, self.merge_base)
        self._stages = [self._build_stage(k) for k in range(self.n_stages + 1)]

    def _build_stage(self, level: int) -> ApertureStage:
        per = self.merge_base**level
        n_sub = self.n_pulses // per
        # Phase centre = mean position of the contributing pulses.
        first_pulse = per * np.arange(n_sub, dtype=np.float64)
        centers = self.x0 + self.spacing * (first_pulse + (per - 1) / 2.0)
        return ApertureStage(
            level=level,
            n_subapertures=n_sub,
            pulses_per_subaperture=per,
            beams=per,
            length=per * self.spacing,
            centers=centers,
        )

    def stage(self, level: int) -> ApertureStage:
        """Stage geometry after ``level`` merge iterations."""
        return self._stages[level]

    @property
    def stages(self) -> list[ApertureStage]:
        return list(self._stages)

    @property
    def final(self) -> ApertureStage:
        """The full-aperture stage (a single subaperture)."""
        return self._stages[-1]

    def child_offsets(self, parent_level: int) -> np.ndarray:
        """Child phase-centre offsets from the parent phase centre.

        For merge base ``b``, a parent at ``parent_level`` is formed
        from ``b`` children of stage ``parent_level - 1``; the offsets
        are symmetric about zero and spaced by the child length.  For
        base 2 this is ``[-l/2, +l/2]`` with ``l`` the child length --
        the configuration of paper eqs. 1-4.
        """
        if parent_level < 1 or parent_level > self.n_stages:
            raise ValueError(
                f"parent_level must be in [1, {self.n_stages}], got {parent_level}"
            )
        child = self.stage(parent_level - 1)
        b = self.merge_base
        k = np.arange(b, dtype=np.float64)
        return child.length * (k - (b - 1) / 2.0)

    def gbp_equivalent_merges(self) -> int:
        """Element combinings global back-projection would need.

        GBP integrates every pulse into every output sample; FFBP's
        saving (the paper's motivation) is the ratio between this and
        :meth:`ffbp_merges`.
        """
        return self.n_pulses

    def ffbp_merges(self) -> int:
        """Per-output-sample combinings summed over all FFBP stages.

        Each stage touches every output sample once per child, so the
        count is ``merge_base * n_stages`` -- logarithmic in the pulse
        count instead of linear.
        """
        return self.merge_base * self.n_stages
