"""Trace-compiled replay tier for the cycle-accurate event backend.

``replay(event:e16)`` runs the event engine once per *(pre-run chip
state, programs, max_cycles)* equivalence class, captures the resolved
schedule into a :class:`~repro.replay.schedule.CompiledSchedule`, and
replays it on later runs -- byte-identical cycles, traces, golden
fingerprints and energy, at a fraction of the wall clock (see
docs/architecture.md §16 and the ``replay`` section of the verify
gate).
"""

from repro.replay.fingerprint import (
    UNCACHEABLE,
    fingerprint_programs,
    fingerprint_value,
)
from repro.replay.machine import ReplayMachine
from repro.replay.schedule import (
    SCHEMA_VERSION,
    ChipState,
    CompiledSchedule,
    apply_schedule,
    compile_schedule,
    restore_chip,
    snapshot_chip,
)

__all__ = [
    "UNCACHEABLE",
    "fingerprint_programs",
    "fingerprint_value",
    "ReplayMachine",
    "SCHEMA_VERSION",
    "ChipState",
    "CompiledSchedule",
    "apply_schedule",
    "compile_schedule",
    "restore_chip",
    "snapshot_chip",
]
