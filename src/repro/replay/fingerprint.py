"""Structural fingerprints of kernel programs for the replay cache.

A replay hit stands in for a full event simulation, so its cache key
must capture *everything the simulation's outcome depends on*: the
machine state (snapshotted separately, see
:mod:`repro.replay.schedule`) and the programs themselves.  Programs
are plain generator functions, usually closures built per run by the
kernel executives, so equality-by-identity is useless -- instead this
module walks them structurally:

- functions hash as (module, qualname, bytecode, consts, names,
  defaults, closure cells), recursing into nested code objects and
  captured values, so two closures built from the same source over the
  same data fingerprint identically;
- primitives, containers, numpy arrays and dataclasses hash by value
  (the :func:`~repro.exec.cache.stable_digest` vocabulary);
- machine-layer objects (chips, engines, contexts, meshes, meters,
  DMA engines) reduce to type markers -- their mutable state is the
  *pre-run snapshot's* job, and double-counting it here would be
  harmless but slow;
- flags hash as ``("flag", is_set, name)`` (a raised flag changes what
  a waiting program does);
- a :class:`~repro.faults.plan.FaultPlan` carrying clauses poisons the
  walk: fault injection must never be served from the replay cache
  (the chaos gate depends on cold-run semantics), so the walk returns
  :data:`UNCACHEABLE`;
- anything unrecognised with a ``__dict__``/``__slots__`` is walked
  generically (sorted attributes, cycle- and depth-guarded); truly
  opaque values return :data:`UNCACHEABLE`.

:data:`UNCACHEABLE` is the conservative escape hatch: the replay
machine runs such programs cold and caches nothing, trading speed for
guaranteed correctness.

Two provisions keep fingerprinting cheap enough to beat the event
engine on paper-scale workloads:

- **Shared-subtree collapse.**  One walk context memoises completed
  (cycle-free) subtrees by object identity; a value reached twice --
  the plan every SPMD core's closure captures, or the single kernel
  closure mapped onto all 16 cores -- is walked once, and later
  occurrences collapse to a ``("shared", digest)`` leaf, so neither
  the walk nor the downstream :func:`~repro.exec.cache.stable_digest`
  pass ever re-traverses it.
- **Declared fingerprints.**  A kernel *builder* knows exactly what
  its generator's behaviour depends on (a plan, a core count, an
  interpolation mode); it may attach that key as a ``__replay_fp__``
  attribute on the program function, and the walker trusts it instead
  of traversing the closure.  The declaration must be digest-stable
  and complete -- everything else the program does is source code,
  which the memo layer's :func:`~repro.exec.cache.code_version`
  already invalidates on.  The verify gate's byte-identity oracles
  are the backstop for an incomplete declaration.
"""

from __future__ import annotations

import dataclasses
import functools
import types
from collections import deque
from typing import Any

import numpy as np

__all__ = ["UNCACHEABLE", "fingerprint_programs", "fingerprint_value"]


class _Uncacheable:
    """Sentinel: this program cannot be soundly fingerprinted."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "UNCACHEABLE"


UNCACHEABLE = _Uncacheable()

_MAX_DEPTH = 24

_PRIMITIVES = (bool, int, float, complex, str, bytes, type(None))
_PRIM_EXACT = frozenset(_PRIMITIVES)


def _machine_types() -> tuple[type, ...]:
    """Machine-layer types that reduce to markers (lazy import)."""
    from repro.machine.chip import EpiphanyChip, EpiphanyContext
    from repro.machine.dma import DmaEngine
    from repro.machine.energy import EnergyMeter
    from repro.machine.event import Barrier, Engine, Process, Resource
    from repro.machine.memory import ExternalMemory, LocalMemory
    from repro.machine.noc import Mesh
    from repro.machine.tracing import ActivityRecorder

    return (
        EpiphanyChip,
        EpiphanyContext,
        DmaEngine,
        EnergyMeter,
        Barrier,
        Engine,
        Process,
        Resource,
        ExternalMemory,
        LocalMemory,
        Mesh,
        ActivityRecorder,
    )


_MACHINE_TYPES: tuple[type, ...] | None = None
_FAULT_TYPES: tuple[type, type] | None = None
_FLAG_TYPE: type | None = None

_DC_FIELDS: dict[type, tuple[str, ...]] = {}


def _dc_field_names(cls: type) -> tuple[str, ...]:
    names = _DC_FIELDS.get(cls)
    if names is None:
        names = tuple(f.name for f in dataclasses.fields(cls))
        _DC_FIELDS[cls] = names
    return names


class _Ctx:
    """One fingerprint traversal: cycle stack + shared-subtree memo.

    ``memo`` maps ``id(obj)`` of completed, cycle-free subtrees to
    their fingerprint; ``keep`` pins those objects so ids cannot be
    recycled mid-walk; ``shared`` caches the collapsed digest leaf of
    a memoised subtree the first time it is reached again.
    """

    __slots__ = ("stack", "memo", "shared", "keep", "ncycles")

    def __init__(self) -> None:
        self.stack: dict[int, int] = {}
        self.memo: dict[int, Any] = {}
        self.shared: dict[int, Any] = {}
        self.keep: list[Any] = []
        self.ncycles = 0


def _collapse(ctx: _Ctx, oid: int) -> Any:
    leaf = ctx.shared.get(oid)
    if leaf is None:
        from repro.exec.cache import stable_digest

        leaf = ("shared", stable_digest(ctx.memo[oid]))
        ctx.shared[oid] = leaf
    return leaf


def _code_fp(code: types.CodeType, ctx: _Ctx, depth: int) -> Any:
    consts = []
    for c in code.co_consts:
        fp = (
            _code_fp(c, ctx, depth + 1)
            if isinstance(c, types.CodeType)
            else _walk(c, ctx, depth + 1)
        )
        if fp is UNCACHEABLE:
            return UNCACHEABLE
        consts.append(fp)
    return (
        "code",
        code.co_name,
        code.co_code,
        tuple(consts),
        code.co_names,
        code.co_freevars,
    )


def _function_fp(fn: types.FunctionType, ctx: _Ctx, depth: int) -> Any:
    declared = fn.__dict__.get("__replay_fp__")
    if declared is not None:
        # The builder vouches for this key (see module docstring);
        # everything else is source, covered by code_version.
        return ("declared", declared)
    cells = []
    for c in fn.__closure__ or ():
        fp = _walk(_cell_value(c), ctx, depth + 1)
        if fp is UNCACHEABLE:
            return UNCACHEABLE
        cells.append(fp)
    defaults = []
    for d in fn.__defaults__ or ():
        fp = _walk(d, ctx, depth + 1)
        if fp is UNCACHEABLE:
            return UNCACHEABLE
        defaults.append(fp)
    kwdefaults = []
    for k, v in sorted((fn.__kwdefaults__ or {}).items()):
        fp = _walk(v, ctx, depth + 1)
        if fp is UNCACHEABLE:
            return UNCACHEABLE
        kwdefaults.append((k, fp))
    code = _code_fp(fn.__code__, ctx, depth)
    if code is UNCACHEABLE:
        return UNCACHEABLE
    return (
        "function",
        fn.__module__,
        fn.__qualname__,
        code,
        tuple(defaults),
        tuple(kwdefaults),
        tuple(cells),
    )


def _cell_value(cell: Any) -> Any:
    try:
        return cell.cell_contents
    except ValueError:  # empty cell (recursive def not yet bound)
        return "<empty-cell>"


def _walk_items(items: Any, ctx: _Ctx, depth: int) -> Any:
    """Walk a flat iterable; UNCACHEABLE in any element poisons it."""
    out = []
    for v in items:
        fp = _walk(v, ctx, depth)
        if fp is UNCACHEABLE:
            return UNCACHEABLE
        out.append(fp)
    return tuple(out)


def _walk(obj: Any, ctx: _Ctx, depth: int) -> Any:
    global _MACHINE_TYPES, _FAULT_TYPES, _FLAG_TYPE

    if depth > _MAX_DEPTH:
        return UNCACHEABLE
    if isinstance(obj, _PRIMITIVES):
        return obj
    if isinstance(obj, (np.ndarray, np.generic)):
        return obj  # stable_digest hashes arrays structurally
    oid = id(obj)
    stack = ctx.stack
    pos = stack.get(oid)
    if pos is not None:
        ctx.ncycles += 1
        return ("cycle", pos)
    if oid in ctx.memo:
        return _collapse(ctx, oid)
    stack[oid] = len(stack)
    cycles_before = ctx.ncycles
    try:
        fp = _walk_inner(obj, ctx, depth)
    finally:
        del stack[oid]
    if fp is not UNCACHEABLE and ctx.ncycles == cycles_before:
        # Self-contained subtree: later occurrences (the plan each
        # core's closure captures, the kernel mapped onto 16 cores)
        # collapse to a digest leaf instead of being re-walked.
        ctx.memo[oid] = fp
        ctx.keep.append(obj)
    return fp


def _walk_inner(obj: Any, ctx: _Ctx, depth: int) -> Any:
    global _MACHINE_TYPES, _FAULT_TYPES, _FLAG_TYPE

    if isinstance(obj, types.FunctionType):
        return _function_fp(obj, ctx, depth)
    if isinstance(obj, types.MethodType):
        fn = _function_fp(obj.__func__, ctx, depth)
        if fn is UNCACHEABLE:
            return UNCACHEABLE
        owner = _walk(obj.__self__, ctx, depth + 1)
        if owner is UNCACHEABLE:
            return UNCACHEABLE
        return ("method", fn, owner)
    if isinstance(obj, functools.partial):
        parts = _walk_items(
            (obj.func, *obj.args, *(v for _k, v in sorted(obj.keywords.items()))),
            ctx,
            depth + 1,
        )
        if parts is UNCACHEABLE:
            return UNCACHEABLE
        return ("partial", parts, tuple(sorted(obj.keywords)))
    if isinstance(obj, (list, tuple)):
        prims = True
        for v in obj:
            if type(v) not in _PRIM_EXACT:
                prims = False
                break
        if prims:
            return (type(obj).__name__, tuple(obj))
        items = _walk_items(obj, ctx, depth + 1)
        if items is UNCACHEABLE:
            return UNCACHEABLE
        return (type(obj).__name__, items)
    if isinstance(obj, (set, frozenset)):
        walked = _walk_items(obj, ctx, depth + 1)
        if walked is UNCACHEABLE:
            return UNCACHEABLE
        try:
            walked = tuple(sorted(walked, key=repr))
        except Exception:
            return UNCACHEABLE
        return (type(obj).__name__, walked)
    if isinstance(obj, dict):
        try:
            items = sorted(obj.items(), key=lambda kv: repr(kv[0]))
        except Exception:
            return UNCACHEABLE
        out = []
        for k, v in items:
            kf = _walk(k, ctx, depth + 1)
            if kf is UNCACHEABLE:
                return UNCACHEABLE
            vf = _walk(v, ctx, depth + 1)
            if vf is UNCACHEABLE:
                return UNCACHEABLE
            out.append((kf, vf))
        return ("dict", tuple(out))
    if isinstance(obj, deque):
        items = _walk_items(obj, ctx, depth + 1)
        if items is UNCACHEABLE:
            return UNCACHEABLE
        return ("deque", items)

    # -- fault layer: injected plans must never be cached --------------
    if _FAULT_TYPES is None:
        from repro.faults.plan import FaultPlan, FaultSchedule

        _FAULT_TYPES = (FaultPlan, FaultSchedule)
    if isinstance(obj, _FAULT_TYPES[0]):
        if obj.faults:
            return UNCACHEABLE
        return ("faultplan-empty", obj.text)
    if isinstance(obj, _FAULT_TYPES[1]):
        plan = _walk(obj.plan, ctx, depth + 1)
        if plan is UNCACHEABLE:
            return UNCACHEABLE
        return ("faultschedule", plan)

    # -- machine layer: state lives in the pre-run snapshot ------------
    if _FLAG_TYPE is None:
        from repro.machine.event import Flag

        _FLAG_TYPE = Flag
    if isinstance(obj, _FLAG_TYPE):
        return ("flag", bool(obj.is_set), obj.name)
    if _MACHINE_TYPES is None:
        _MACHINE_TYPES = _machine_types()
    if isinstance(obj, _MACHINE_TYPES):
        return ("machine", type(obj).__qualname__)

    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        names = _dc_field_names(type(obj))
        values = [getattr(obj, name) for name in names]
        prims = True
        for v in values:
            if type(v) not in _PRIM_EXACT:
                prims = False
                break
        if prims:
            fields = tuple(zip(names, values))
        else:
            out = []
            for name, v in zip(names, values):
                fp = _walk(v, ctx, depth + 1)
                if fp is UNCACHEABLE:
                    return UNCACHEABLE
                out.append((name, fp))
            fields = tuple(out)
        return ("dataclass", type(obj).__qualname__, fields)
    if isinstance(obj, types.GeneratorType):
        # A live generator's suspended frame is not capturable.
        return UNCACHEABLE

    # -- generic objects: sorted attribute walk ------------------------
    state = getattr(obj, "__dict__", None)
    if state is None and hasattr(type(obj), "__slots__"):
        state = {
            name: getattr(obj, name)
            for name in _all_slots(type(obj))
            if hasattr(obj, name)
        }
    if isinstance(state, dict):
        walked = _walk(state, ctx, depth + 1)
        if walked is UNCACHEABLE:
            return UNCACHEABLE
        return (
            "object",
            type(obj).__module__,
            type(obj).__qualname__,
            walked,
        )
    return UNCACHEABLE


def _all_slots(cls: type) -> tuple[str, ...]:
    names: list[str] = []
    for klass in cls.__mro__:
        slots = getattr(klass, "__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        names.extend(s for s in slots if not s.startswith("__"))
    return tuple(dict.fromkeys(names))


def fingerprint_value(value: Any) -> Any:
    """Structural fingerprint of one value, or :data:`UNCACHEABLE`."""
    return _walk(value, _Ctx(), 0)


def fingerprint_programs(programs: dict[int, Any]) -> Any:
    """Fingerprint a core->program mapping, or :data:`UNCACHEABLE`.

    The result is a digest-stable structure (tuples, primitives,
    ndarrays) suitable as part of a
    :func:`repro.perf.memo.memoize` payload.  All cores share one walk
    context: an SPMD kernel mapped onto every core is traversed once
    and collapses to a digest leaf for the other fifteen.
    """
    ctx = _Ctx()
    out = []
    for core in sorted(programs):
        fp = _walk(programs[core], ctx, 0)
        if fp is UNCACHEABLE:
            return UNCACHEABLE
        out.append((core, fp))
    return ("programs", tuple(out))
