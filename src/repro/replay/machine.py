"""``ReplayMachine``: trace-compiled execution of the event backend.

Wraps a :class:`~repro.machine.chip.EpiphanyChip` behind the
:class:`~repro.machine.api.Machine` protocol.  The first
:meth:`ReplayMachine.run` of a given *(pre-run chip state, programs,
max_cycles, recorder?)* equivalence class runs the event engine cold
and captures the resolved schedule into a
:class:`~repro.replay.schedule.CompiledSchedule`; every later run of
the same class restores the captured post-state in one pass instead of
re-simulating -- byte-identical cycles, traces, energy and results,
enforced by the ``replay`` section of the verify gate.

Caching flows through :func:`repro.perf.memo.memoize` under the
``"replay"`` kind: a process-level LRU first, then (``persist=True``)
the opt-in on-disk :class:`~repro.exec.cache.ResultCache`, whose entry
key embeds :func:`~repro.exec.cache.code_version` -- any source edit
invalidates every captured schedule at once.  The memo payload key is
the schema version, the canonical spec string *and* the full spec
dataclass, the pre-run :class:`~repro.replay.schedule.ChipState`, the
structural program fingerprint and ``max_cycles``.

Safety valves (all observable through :meth:`stats`):

- a non-chip inner machine (analytic, fabric, fault-wrapped) is pure
  pass-through -- ``bypassed`` counts those runs;
- pending engine events or live processes at run entry (a stalled
  prior phase, an un-drained ``set_flag_at`` landing) bypass capture;
- a program set that cannot be soundly fingerprinted (live generator,
  opaque object, a :class:`~repro.faults.plan.FaultPlan` carrying
  clauses anywhere in its closures) runs cold and caches nothing --
  ``uncacheable`` counts them.  This is what guarantees any
  ``faulty(...)`` wrapper or chaos clause misses the cache;
- a run that stalls (exhausts ``max_cycles``) is remembered as an
  *always-cold* class via the invalid-schedule sentinel.

Registry spelling: ``replay(<inner-spec>)`` composes (e.g.
``replay(event:e16)``); the bare backend name ``replay`` defaults the
inner to the event chip (``replay:e16`` == ``replay(event:e16)``).
"""

from __future__ import annotations

from typing import Any

from repro.machine.api import Machine, Programs, RunResult
from repro.replay.schedule import (
    INVALID_SCHEDULE,
    SCHEMA_VERSION,
    CompiledSchedule,
    apply_schedule,
    compile_schedule,
    snapshot_chip,
)

__all__ = ["ReplayMachine"]


class ReplayMachine:
    """A :class:`~repro.machine.api.Machine` that replays captured
    event schedules (see module docstring)."""

    def __init__(self, inner: Machine) -> None:
        from repro.machine.chip import EpiphanyChip

        self.inner = inner
        self._cacheable = type(inner) is EpiphanyChip
        self.captures = 0
        self.replays = 0
        self.bypassed = 0
        self.uncacheable = 0

    # -- delegated Machine surface --------------------------------------
    @property
    def spec(self):
        return self.inner.spec

    @property
    def energy(self):
        return self.inner.energy

    @property
    def n_cores(self) -> int:
        return self.inner.n_cores

    @property
    def now(self) -> int:
        return self.inner.now

    @property
    def recorder(self):
        return self.inner.recorder

    @recorder.setter
    def recorder(self, value) -> None:
        # ``repro profile`` attaches its ActivityRecorder with plain
        # attribute assignment; without this setter the write would
        # land on the wrapper and the chip would silently not record.
        self.inner.recorder = value

    def context(self, core_id: int):
        return self.inner.context(core_id)

    def flag(self, name: str = "") -> Any:
        return self.inner.flag(name=name)

    def set_flag_at(self, flag: Any, cycle: int) -> None:
        self.inner.set_flag_at(flag, cycle)

    def hops(self, src_core: int, dst_core: int) -> int:
        return self.inner.hops(src_core, dst_core)

    def advance(self, cycles: int, busy_cores: int = 0) -> None:
        self.inner.advance(cycles, busy_cores)

    def __getattr__(self, name: str) -> Any:
        # Anything beyond the Machine protocol (``engine`` for the
        # watchdog sniffers, fabric services, ...) delegates.
        return getattr(self.inner, name)

    def stats(self) -> dict[str, int]:
        """Capture/replay counters for tests, bench and health."""
        return {
            "captures": self.captures,
            "replays": self.replays,
            "bypassed": self.bypassed,
            "uncacheable": self.uncacheable,
        }

    # -- execution --------------------------------------------------------
    def _cold(self, programs: Programs, max_cycles: int | None) -> RunResult:
        return self.inner.run(programs, max_cycles=max_cycles)

    def run(
        self, programs: Programs, max_cycles: int | None = None
    ) -> RunResult:
        from repro.perf.memo import memo_enabled, memoize

        inner = self.inner
        if not self._cacheable or not memo_enabled():
            self.bypassed += 1
            return self._cold(programs, max_cycles)
        engine = inner.engine
        if engine._heap or engine._ready or engine._live:
            # Pending events (a stalled prior run, an un-drained
            # background landing): the pre-state is not fully
            # value-capturable, so this run is not an equivalence
            # class we can key.
            self.bypassed += 1
            return self._cold(programs, max_cycles)
        from repro.replay.fingerprint import UNCACHEABLE, fingerprint_programs

        fingerprint = fingerprint_programs(programs)
        if fingerprint is UNCACHEABLE:
            self.uncacheable += 1
            return self._cold(programs, max_cycles)
        spec = inner.spec
        payload = {
            "schema": SCHEMA_VERSION,
            "spec_str": f"{spec.mesh_rows}x{spec.mesh_cols}@{spec.clock_hz:g}",
            "spec": spec,
            "plan": "",  # fault plans never reach the cacheable path
            "pre": snapshot_chip(inner),
            "programs": fingerprint,
            "max_cycles": max_cycles,
            "recorder": inner.recorder is not None,
        }
        live: list[RunResult] = []

        def build() -> CompiledSchedule:
            intervals_before = (
                len(inner.recorder.intervals)
                if inner.recorder is not None
                else 0
            )
            result = self._cold(programs, max_cycles)
            live.append(result)
            if result.stalled:
                return INVALID_SCHEDULE
            return compile_schedule(
                inner, result, tuple(sorted(programs)), intervals_before
            )

        sched = memoize("replay", payload, build, persist=True)
        if live:
            # This call was the capture (or the stalled cold run that
            # poisoned the class): hand back the live result untouched.
            if sched.valid:
                self.captures += 1
            else:
                self.bypassed += 1
            return live[0]
        if not sched.valid:
            # A previously-seen stalling class: always run cold (the
            # stall left pending events last time; it will again).
            self.bypassed += 1
            return self._cold(programs, max_cycles)
        self.replays += 1
        return apply_schedule(inner, sched)
