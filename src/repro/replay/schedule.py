"""Compiled event schedules: capture and restore of chip state.

The event engine is deterministic: one ``(pre-run chip state, programs,
max_cycles)`` tuple always resolves to the same event schedule, the
same post-run counters and the same results.  This module captures
that resolved outcome once -- the cycle timeline, per-core trace
records, NoC/DMA/external-memory accumulations, energy accounting and
the optional activity-recorder intervals -- into a compact, picklable
:class:`CompiledSchedule`, and re-applies it to a chip in one
vectorised pass instead of re-simulating event by event.

Two dataclasses:

- :class:`ChipState` -- every mutable accumulator of an
  :class:`~repro.machine.chip.EpiphanyChip` (engine clock + sequence
  counter, mesh links, external channel, energy meter, per-core local
  memory / DMA / trace counters).  Snapshotted *before* a run it keys
  the capture (back-to-back phased runs on one machine chain through
  their pre-states); snapshotted *after* it is the restore target.
- :class:`CompiledSchedule` -- the post-run :class:`ChipState`, the
  scalar outcome (cycles/seconds/energy/power), the per-program
  results and the activity intervals recorded during the run, stored
  as numpy column arrays (core/kind/start/end) -- the "vectorized
  timeline" a replay appends in one go.

Byte-identity contract: ``restore_chip`` mutates the chip's existing
objects **in place** (it never swaps in fresh ``Trace``/meter objects),
so the aliasing semantics of a cold run are preserved exactly -- a
:class:`~repro.machine.api.RunResult` built from the live context
traces after a restore is indistinguishable from one built after a
real event run, including across later phases that keep accumulating
into the same trace objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

from repro.machine.core import OpBlock
from repro.machine.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.machine.chip import EpiphanyChip

__all__ = [
    "SCHEMA_VERSION",
    "ChipState",
    "CompiledSchedule",
    "snapshot_chip",
    "restore_chip",
    "compile_schedule",
    "apply_schedule",
]

SCHEMA_VERSION = 1
"""Bumped whenever the snapshot shape changes; part of the memo key, so
a schedule captured by an older layout can never be replayed by a newer
one (on top of the :func:`~repro.exec.cache.code_version` embedded in
the on-disk entry key)."""

_TRACE_FIELDS = (
    "ext_read_bytes",
    "ext_write_bytes",
    "remote_read_bytes",
    "remote_write_bytes",
    "messages_sent",
    "messages_received",
    "barriers",
    "dma_transfers",
    "compute_cycles",
    "stall_cycles",
)

_KINDS = ("compute", "mem", "dma", "sync", "send")
_KIND_CODE = {k: i for i, k in enumerate(_KINDS)}


@dataclass(frozen=True)
class ChipState:
    """Every mutable accumulator of one ``EpiphanyChip``, by value.

    Tuples throughout so the state is hashable by
    :func:`~repro.exec.cache.stable_digest`, shareable between memo
    hits, and picklable for the on-disk cache.
    """

    now: int
    seq: int
    live: int
    # mesh: sorted ((plane, src, dst), free_at, bytes_moved) per link
    links: tuple[tuple[tuple[str, tuple[int, int], tuple[int, int]], float, float], ...]
    mesh_byte_hops: float
    mesh_messages: int
    # external channel
    ext: tuple[float, float, float, int, int, float]
    # energy meter: sorted (core, busy_cycles), noc byte-hops, ext bytes
    busy: tuple[tuple[int, float], ...]
    energy_noc: float
    energy_ext: float
    # per-core (allocated, peak, bytes_accessed)
    locals_: tuple[tuple[int, int, float], ...]
    # per-core (busy_until, transfers, bytes_moved)
    dmas: tuple[tuple[int, int, float], ...]
    # per-core trace: (OpBlock, *_TRACE_FIELDS values)
    traces: tuple[tuple[Any, ...], ...]


@dataclass(frozen=True)
class CompiledSchedule:
    """One captured event run, ready to replay onto a chip."""

    valid: bool
    post: ChipState | None
    cycles: int
    seconds: float
    energy_joules: float
    average_power_w: float
    program_cores: tuple[int, ...]
    results: tuple[Any, ...]
    # activity intervals recorded during the run, as column arrays
    # (int64 core / kind-code / start / end); None when no recorder
    # was attached at capture time.
    interval_cores: "np.ndarray | None" = None
    interval_kinds: "np.ndarray | None" = None
    interval_starts: "np.ndarray | None" = None
    interval_ends: "np.ndarray | None" = None

    def n_intervals(self) -> int:
        return 0 if self.interval_cores is None else int(len(self.interval_cores))

    def timeline(self) -> "np.ndarray":
        """The captured activity timeline as one structured array."""
        import numpy as np

        n = self.n_intervals()
        out = np.zeros(
            n,
            dtype=[("core", "i8"), ("kind", "i8"), ("start", "i8"), ("end", "i8")],
        )
        if n:
            out["core"] = self.interval_cores
            out["kind"] = self.interval_kinds
            out["start"] = self.interval_starts
            out["end"] = self.interval_ends
        return out


INVALID_SCHEDULE = CompiledSchedule(
    valid=False,
    post=None,
    cycles=0,
    seconds=0.0,
    energy_joules=0.0,
    average_power_w=0.0,
    program_cores=(),
    results=(),
)
"""Cached sentinel for equivalence classes that stall (exhaust their
``max_cycles`` budget): a stalled run leaves pending events behind and
cannot be restored, and it deterministically stalls again -- so the
class is remembered as *always run cold*."""


def snapshot_chip(chip: "EpiphanyChip") -> ChipState:
    """Capture every mutable accumulator of ``chip`` by value."""
    eng = chip.engine
    mesh = chip.mesh
    ext = chip.ext
    meter = chip.energy
    return ChipState(
        now=eng.now,
        seq=eng._seq,
        live=eng._live,
        links=tuple(
            (key, link.free_at, link.bytes_moved)
            for key, link in sorted(mesh._links.items())
        ),
        mesh_byte_hops=mesh.total_byte_hops,
        mesh_messages=mesh.messages,
        ext=(
            ext.free_at,
            ext.read_bytes,
            ext.write_bytes,
            ext.n_reads,
            ext.n_writes,
            ext.busy_cycles,
        ),
        busy=tuple(sorted(meter.busy_cycles.items())),
        energy_noc=meter.noc_byte_hops,
        energy_ext=meter.ext_bytes,
        locals_=tuple(
            (c.local.allocated, c.local.peak, c.local.bytes_accessed)
            for c in chip._contexts
        ),
        dmas=tuple(
            (c.dma._busy_until, c.dma.transfers, c.dma.bytes_moved)
            for c in chip._contexts
        ),
        traces=tuple(
            (c.trace.ops,) + tuple(getattr(c.trace, f) for f in _TRACE_FIELDS)
            for c in chip._contexts
        ),
    )


def restore_chip(chip: "EpiphanyChip", state: ChipState) -> None:
    """Set ``chip`` to ``state``, mutating its live objects in place.

    Object identities (contexts, traces, the energy meter, the mesh,
    the external channel) are preserved so aliases held by earlier
    :class:`~repro.machine.api.RunResult` objects keep accumulating
    exactly as they would across cold runs.
    """
    from repro.machine.noc import _Link

    eng = chip.engine
    eng.now = state.now
    eng._seq = state.seq
    eng._live = state.live
    mesh = chip.mesh
    mesh._links.clear()
    for key, free_at, bytes_moved in state.links:
        mesh._links[key] = _Link(free_at=free_at, bytes_moved=bytes_moved)
    mesh.total_byte_hops = state.mesh_byte_hops
    mesh.messages = state.mesh_messages
    ext = chip.ext
    (
        ext.free_at,
        ext.read_bytes,
        ext.write_bytes,
        ext.n_reads,
        ext.n_writes,
        ext.busy_cycles,
    ) = state.ext
    meter = chip.energy
    meter.busy_cycles.clear()
    meter.busy_cycles.update(state.busy)
    meter.noc_byte_hops = state.energy_noc
    meter.ext_bytes = state.energy_ext
    for ctx, (allocated, peak, accessed) in zip(chip._contexts, state.locals_):
        ctx.local.allocated = allocated
        ctx.local.peak = peak
        ctx.local.bytes_accessed = accessed
    for ctx, (busy_until, transfers, moved) in zip(chip._contexts, state.dmas):
        ctx.dma._busy_until = busy_until
        ctx.dma.transfers = transfers
        ctx.dma.bytes_moved = moved
    for ctx, rec in zip(chip._contexts, state.traces):
        trace = ctx.trace
        trace.ops = rec[0]
        for field, value in zip(_TRACE_FIELDS, rec[1:]):
            setattr(trace, field, value)


def compile_schedule(
    chip: "EpiphanyChip",
    result: Any,
    program_cores: tuple[int, ...],
    intervals_before: int,
) -> CompiledSchedule:
    """Capture a just-finished cold run into a :class:`CompiledSchedule`.

    ``intervals_before`` is how many recorder intervals existed before
    the run started (only the run's own intervals are captured);
    ``result`` is the live :class:`~repro.machine.api.RunResult` -- its
    ``results`` are deep-copied so the cached schedule shares nothing
    mutable with the caller (the memo layer freezes cached values, and
    the caller's arrays must stay writable).
    """
    import copy

    cores: "np.ndarray | None" = None
    kinds = starts = ends = None
    if chip.recorder is not None:
        import numpy as np

        new = chip.recorder.intervals[intervals_before:]
        cores = np.array([iv.core for iv in new], dtype=np.int64)
        kinds = np.array([_KIND_CODE[iv.kind] for iv in new], dtype=np.int64)
        starts = np.array([iv.start for iv in new], dtype=np.int64)
        ends = np.array([iv.end for iv in new], dtype=np.int64)
    return CompiledSchedule(
        valid=True,
        post=snapshot_chip(chip),
        cycles=int(result.cycles),
        seconds=float(result.seconds),
        energy_joules=float(result.energy_joules),
        average_power_w=float(result.average_power_w),
        program_cores=tuple(program_cores),
        results=copy.deepcopy(result.results),
        interval_cores=cores,
        interval_kinds=kinds,
        interval_starts=starts,
        interval_ends=ends,
    )


def apply_schedule(chip: "EpiphanyChip", sched: CompiledSchedule) -> Any:
    """Replay a captured run onto ``chip``; return a fresh RunResult.

    Restores the post-run state, appends the captured activity
    timeline to the chip's recorder (when one is attached) and rebuilds
    the :class:`~repro.machine.api.RunResult` from the chip's *live*
    trace objects -- the same aliasing a cold run produces.
    """
    import copy

    from repro.machine.api import RunResult
    from repro.machine.tracing import Interval

    assert sched.valid and sched.post is not None
    restore_chip(chip, sched.post)
    if chip.recorder is not None and sched.n_intervals():
        append = chip.recorder.intervals.append
        for core, kind, start, end in zip(
            sched.interval_cores.tolist(),
            sched.interval_kinds.tolist(),
            sched.interval_starts.tolist(),
            sched.interval_ends.tolist(),
        ):
            append(Interval(core, _KINDS[kind], start, end))
    return RunResult(
        cycles=sched.cycles,
        seconds=sched.seconds,
        energy_joules=sched.energy_joules,
        average_power_w=sched.average_power_w,
        traces=tuple(chip.context(c).trace for c in sched.program_cores),
        results=copy.deepcopy(sched.results),
        stalled=False,
    )
