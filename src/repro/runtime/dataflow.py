"""Declarative dataflow graphs -- the paper's future-work direction.

Paper Section VII: "a high-level language support that can raise the
abstraction level for the programmer, while not compromising the
performance benefits, is essential", pointing at the authors' occam-pi
work on CSP-style process networks.

This module is that idea in miniature: instead of hand-writing one C
program per core plus manual flag synchronisation (the MPMD burden of
Section VI-B), the programmer declares a synchronous dataflow graph --
nodes with per-firing work, edges with per-firing payloads -- and the
builder generates the per-core programs, allocates the channels, and
places the graph on the mesh with the communication-aware optimiser.
The generated network is deadlock-free by construction for acyclic
graphs (credit-flow channels + topological firing order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.machine.api import Machine, MachineContext, RunResult
from repro.machine.core import OpBlock
from repro.runtime.mapping import Placement, TaskGraph, greedy_place
from repro.runtime.mpmd import Pipeline, Task


@dataclass(frozen=True)
class NodeSpec:
    """One dataflow actor: its per-firing work."""

    name: str
    work: OpBlock


@dataclass(frozen=True)
class EdgeSpec:
    """One stream: bytes produced per upstream firing."""

    src: str
    dst: str
    nbytes: int


class GraphError(ValueError):
    """Raised for malformed dataflow graphs."""


@dataclass
class DataflowGraph:
    """A rate-1 synchronous dataflow graph.

    Every node fires once per graph iteration, consuming one token on
    each input edge and producing one on each output edge.  Build with
    :meth:`node` and :meth:`edge`, then :meth:`build` for a runnable
    :class:`~repro.runtime.mpmd.Pipeline`.
    """

    nodes: dict[str, NodeSpec] = field(default_factory=dict)
    edges: list[EdgeSpec] = field(default_factory=list)

    def node(self, name: str, work: OpBlock) -> "DataflowGraph":
        """Declare an actor; returns self for chaining."""
        if name in self.nodes:
            raise GraphError(f"duplicate node {name!r}")
        self.nodes[name] = NodeSpec(name, work)
        return self

    def edge(self, src: str, dst: str, nbytes: int) -> "DataflowGraph":
        """Declare a stream from ``src`` to ``dst``."""
        for endpoint in (src, dst):
            if endpoint not in self.nodes:
                raise GraphError(f"edge references unknown node {endpoint!r}")
        if src == dst:
            raise GraphError(f"self-loop on {src!r}")
        if nbytes < 0:
            raise GraphError("negative payload")
        if any(e.src == src and e.dst == dst for e in self.edges):
            raise GraphError(f"duplicate edge {src!r} -> {dst!r}")
        self.edges.append(EdgeSpec(src, dst, nbytes))
        return self

    # ------------------------------------------------------------------
    def topological_order(self) -> list[str]:
        """Topological node order; raises :class:`GraphError` on cycles.

        Cycles would deadlock the generated network (every actor waits
        on its inputs before producing), so they are rejected at build
        time rather than discovered at simulation time.
        """
        indeg = {n: 0 for n in self.nodes}
        for e in self.edges:
            indeg[e.dst] += 1
        ready = sorted(n for n, d in indeg.items() if d == 0)
        order: list[str] = []
        while ready:
            n = ready.pop(0)
            order.append(n)
            for e in self.edges:
                if e.src == n:
                    indeg[e.dst] -= 1
                    if indeg[e.dst] == 0:
                        ready.append(e.dst)
            ready.sort()
        if len(order) != len(self.nodes):
            cyclic = sorted(set(self.nodes) - set(order))
            raise GraphError(f"dataflow graph has a cycle through {cyclic}")
        return order

    def task_graph(self) -> TaskGraph:
        """The weighted graph the placement optimiser consumes."""
        return TaskGraph(
            tasks=tuple(self.nodes),
            edges={(e.src, e.dst): float(e.nbytes) for e in self.edges},
        )

    def _make_program(self, name: str, firings: int):
        spec = self.nodes[name]

        def program(
            ctx: MachineContext,
            ins: dict[str, "object"],
            outs: dict[str, "object"],
        ) -> Iterator[Any]:
            for _ in range(firings):
                for ch in ins.values():
                    yield from ch.recv(ctx)
                yield from ctx.work(spec.work)
                for ch in outs.values():
                    yield from ch.send(ctx, self._payload(name, ch))

        return program

    def _payload(self, src: str, channel) -> int:
        for e in self.edges:
            if e.src == src and channel.name == f"{e.src}->{e.dst}":
                return e.nbytes
        raise GraphError(f"no edge for channel {channel.name!r}")  # pragma: no cover

    def build(
        self,
        machine: Machine,
        firings: int,
        placement: Placement | None = None,
        channel_capacity: int = 2,
        watchdog: int | None = None,
    ) -> Pipeline:
        """Generate programs, channels and placement; return a Pipeline.

        ``firings`` is how many graph iterations to run.  The payload
        buffers are sized from the edge declarations, so local-memory
        overflow is caught at build time.
        """
        if not self.nodes:
            raise GraphError("empty graph")
        if firings < 1:
            raise GraphError("need at least one firing")
        self.topological_order()  # validates acyclicity
        graph = self.task_graph()
        if len(graph.tasks) > machine.n_cores:
            raise GraphError(
                f"{len(graph.tasks)} actors exceed {machine.n_cores} cores"
            )
        place = placement or greedy_place(
            graph, machine.spec.mesh_rows, machine.spec.mesh_cols
        )
        payloads = {(e.src, e.dst): e.nbytes for e in self.edges}
        tasks = [
            Task(name, self._make_program(name, firings)) for name in self.nodes
        ]
        return Pipeline(
            machine,
            tasks,
            place,
            channel_capacity=channel_capacity,
            payload_bytes=payloads,
            watchdog=watchdog,
        )

    def run(
        self,
        machine: Machine,
        firings: int,
        placement: Placement | None = None,
    ) -> RunResult:
        """Build and run in one step."""
        return self.build(machine, firings, placement).run()


def linear_chain(
    stage_works: list[OpBlock], payload: int = 64
) -> DataflowGraph:
    """Convenience: a simple N-stage pipeline graph."""
    g = DataflowGraph()
    names = [f"stage{i}" for i in range(len(stage_works))]
    for name, work in zip(names, stage_works):
        g.node(name, work)
    for a, b in zip(names, names[1:]):
        g.edge(a, b, payload)
    return g
