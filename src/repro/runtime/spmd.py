"""SPMD launcher and data partitioning.

Paper Section V-B: "The parallel implementation of the FFBP algorithm
is based on the Single Program Multiple Data (SPMD) technique meaning
that the same source code is used for every core ... the whole data set
is split among the processing cores" -- and Fig. 6: the *resulting
image* is divided into independent slices, one per core, with some
redundant access to the contributing data.
"""

from __future__ import annotations

from repro.faults.report import CONTAINED_FAILURES, DeadlockReport
from repro.machine.api import KernelFn, Machine, RunResult


def partition(n_items: int, n_parts: int) -> list[slice]:
    """Balanced contiguous partition of ``n_items`` into ``n_parts``.

    The first ``n_items % n_parts`` slices get one extra item, so slice
    sizes differ by at most one -- the load balance the paper's
    "natural scalability" claim rests on.
    """
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    base, extra = divmod(n_items, n_parts)
    slices = []
    start = 0
    for p in range(n_parts):
        size = base + (1 if p < extra else 0)
        slices.append(slice(start, start + size))
        start += size
    return slices


def run_spmd(
    machine: Machine,
    n_cores: int,
    kernel: KernelFn,
) -> RunResult:
    """Run the same kernel on cores ``0..n_cores-1`` of any backend.

    The kernel distinguishes its share of work via ``ctx.core_id`` and
    ``ctx.n_cores`` (which is the machine's core count; pass the active
    count through closure state if it differs) and synchronises with
    ``yield from ctx.barrier()``.

    A backend deadlock (a barrier party lost to an injected fault, a
    flag nobody raises) is converted into a structured
    :class:`~repro.faults.report.DeadlockReport` naming the cycle; see
    ``docs/architecture.md`` §11.
    """
    if not 1 <= n_cores <= machine.n_cores:
        raise ValueError(
            f"n_cores must be in 1..{machine.n_cores}, got {n_cores}"
        )
    try:
        return machine.run({core: kernel for core in range(n_cores)})
    except CONTAINED_FAILURES:
        raise
    except RuntimeError as exc:
        if "deadlock" in str(exc).lower():
            raise DeadlockReport(cycle=machine.now, note=str(exc)) from exc
        raise
