"""Flag-synchronised streaming channels between cores.

Paper Section VI-B: on Epiphany, MPMD streaming requires "explicit
management of synchronization between the different cores ... the
synchronization is required for the processing cores to indicate to the
following core ... that it has completed its task so that the
subsequent core can proceed".

A :class:`Channel` models exactly that idiom: the producer posts the
payload into the consumer's local memory over the on-chip write mesh
and then raises a flag; the consumer spins on the flag.  Channels are
credit-flow-controlled (the consumer's buffer has ``capacity`` slots;
a full channel stalls the producer), which is how pipeline backpressure
arises in the autofocus mapping.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.machine.chip import EpiphanyChip, EpiphanyContext
from repro.machine.event import Delay, Flag, Wait, Waitable


class Channel:
    """A single-producer single-consumer streaming channel."""

    def __init__(
        self,
        chip: EpiphanyChip,
        src_core: int,
        dst_core: int,
        capacity: int = 2,
        payload_bytes: int | None = None,
        name: str = "",
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if src_core == dst_core:
            raise ValueError("channel endpoints must be distinct cores")
        self.chip = chip
        self.src_core = src_core
        self.dst_core = dst_core
        self.capacity = capacity
        self.payload_bytes = payload_bytes
        self.name = name or f"ch{src_core}->{dst_core}"
        self._data: deque[Flag] = deque()
        self._credits = capacity
        self._credit_flag: Flag | None = None
        self._recv_flag: Flag | None = None
        self.messages = 0
        self.bytes_moved = 0.0
        self.hops = chip.mesh.hops(
            chip.context(src_core).coord, chip.context(dst_core).coord
        )
        # Consumer-side buffer lives in the destination scratchpad.
        if payload_bytes is not None:
            chip.context(dst_core).local.allocate(capacity * payload_bytes)

    # ------------------------------------------------------------------
    def send(self, ctx: EpiphanyContext, nbytes: float) -> Iterator[Waitable]:
        """Producer side: post a message of ``nbytes``.

        Stalls on missing credit (consumer buffer full), then issues
        the stores (one 64-bit store per cycle through the write mesh)
        and raises the consumer's flag when the tail lands.
        """
        if ctx.core_id != self.src_core:
            raise ValueError(
                f"{self.name}: send from core {ctx.core_id}, expected {self.src_core}"
            )
        if self.payload_bytes is not None and nbytes > self.payload_bytes:
            raise ValueError(
                f"{self.name}: message of {nbytes} B exceeds slot size "
                f"{self.payload_bytes} B"
            )
        while self._credits == 0:
            self._credit_flag = self.chip.engine.flag(name=f"{self.name}.credit")
            yield Wait(self._credit_flag)
        self._credits -= 1
        self.messages += 1
        self.bytes_moved += nbytes
        ctx.trace.messages_sent += 1

        arrival = ctx.remote_write_arrival(self.dst_core, nbytes)
        data_flag = self.chip.engine.flag(name=f"{self.name}.msg{self.messages}")
        self._data.append(data_flag)
        if self._recv_flag is not None:
            flag, self._recv_flag = self._recv_flag, None
            flag.set()

        engine = self.chip.engine

        def _land() -> Iterator[Waitable]:
            gap = arrival - engine.now
            if gap > 0:
                yield Delay(gap)
            data_flag.set()

        engine.spawn(_land(), name=f"{self.name}.land")

        # Store issue cost on the producer.
        issue = int(nbytes / self.chip.spec.local_bytes_per_cycle)
        self.chip.energy.add_busy(ctx.core_id, issue)
        ctx.trace.compute_cycles += issue
        if issue:
            yield Delay(issue)

    def recv(self, ctx: EpiphanyContext) -> Iterator[Waitable]:
        """Consumer side: wait for the next message and free its slot."""
        if ctx.core_id != self.dst_core:
            raise ValueError(
                f"{self.name}: recv on core {ctx.core_id}, expected {self.dst_core}"
            )
        while not self._data:
            self._recv_flag = self.chip.engine.flag(name=f"{self.name}.empty")
            yield Wait(self._recv_flag)
        flag = self._data.popleft()
        before = self.chip.engine.now
        yield Wait(flag)
        ctx.trace.stall_cycles += self.chip.engine.now - before
        ctx.trace.messages_received += 1
        # Free the slot: return a credit to the producer.
        self._credits += 1
        if self._credit_flag is not None:
            cf, self._credit_flag = self._credit_flag, None
            cf.set()
