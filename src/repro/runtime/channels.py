"""Flag-synchronised streaming channels between cores.

Paper Section VI-B: on Epiphany, MPMD streaming requires "explicit
management of synchronization between the different cores ... the
synchronization is required for the processing cores to indicate to the
following core ... that it has completed its task so that the
subsequent core can proceed".

A :class:`Channel` models exactly that idiom: the producer posts the
payload into the consumer's local memory over the on-chip write mesh
and then raises a flag; the consumer spins on the flag.  Channels are
credit-flow-controlled (the consumer's buffer has ``capacity`` slots;
a full channel stalls the producer), which is how pipeline backpressure
arises in the autofocus mapping.

Channels are written purely against the machine-abstraction layer
(:mod:`repro.machine.api`): flag creation, deferred flag raising and
mesh distances come from the :class:`~repro.machine.api.Machine`;
posting, store issue and flag waits go through the per-core
:class:`~repro.machine.api.MachineContext`.  The same channel therefore
runs on the event-driven chip and on the analytic backend.

Resilience (``docs/architecture.md`` §11): every flag wait records a
:class:`~repro.faults.report.BlameReport` in :attr:`Channel.wait_state`
while it is pending, so the pipeline deadlock detector and the stalled
``RunResult`` path can say *who* is stuck on *what*.  An optional
``watchdog`` (cycles) arms a timer on event backends: a wait that
outlives it raises :class:`~repro.faults.report.StallError` instead of
letting the run burn silently -- the diagnosis Section VI-B of the
paper leaves to the programmer.  Watchdogs default to off; fault-free
runs are byte-identical with or without this module's bookkeeping.
"""

from __future__ import annotations

from dataclasses import replace
from collections import deque
from typing import Any, Iterator

from repro.faults.report import BlameReport, StallError
from repro.machine.api import Machine, MachineContext


class Channel:
    """A single-producer single-consumer streaming channel."""

    def __init__(
        self,
        machine: Machine,
        src_core: int,
        dst_core: int,
        capacity: int = 2,
        payload_bytes: int | None = None,
        name: str = "",
        watchdog: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(
                f"capacity must be >= 1, got {capacity} "
                f"(channel from src core {src_core} to dst core {dst_core}; "
                f"a zero-capacity channel deadlocks its producer on the "
                f"first post)"
            )
        if src_core == dst_core:
            raise ValueError("channel endpoints must be distinct cores")
        if watchdog is not None and watchdog < 1:
            raise ValueError(f"watchdog must be >= 1 cycles, got {watchdog}")
        self.machine = machine
        self.src_core = src_core
        self.dst_core = dst_core
        self.capacity = capacity
        self.payload_bytes = payload_bytes
        self.watchdog = watchdog
        self.wait_state: BlameReport | None = None
        self.name = name or f"ch{src_core}->{dst_core}"
        self._data: deque[Any] = deque()
        self._credits = capacity
        self._credit_flag: Any = None
        self._recv_flag: Any = None
        self.messages = 0
        self.bytes_moved = 0.0
        self.hops = machine.hops(src_core, dst_core)
        # Consumer-side buffer lives in the destination scratchpad.
        if payload_bytes is not None:
            machine.context(dst_core).local.allocate(capacity * payload_bytes)

    # ------------------------------------------------------------------
    def _guarded_wait(
        self, ctx: MachineContext, flag: Any, role: str
    ) -> Iterator[Any]:
        """Wait on ``flag``, recording blame while pending.

        ``role`` is ``"consumer"`` (waiting for data) or ``"producer"``
        (waiting for credit).  With a :attr:`watchdog` armed on an
        event backend, a timer force-raises the flag at the deadline
        and the resumed waiter raises :class:`StallError`; on other
        backends the machine's own deadlock detection takes over (the
        pipeline layer converts it to a structured report using
        :attr:`wait_state`).
        """
        since = ctx.now
        peer = self.src_core if role == "consumer" else self.dst_core
        self.wait_state = BlameReport(
            channel=self.name,
            role=role,
            waiter_core=ctx.core_id,
            peer_core=peer,
            flag=getattr(flag, "name", "") or repr(flag),
            since_cycle=since,
            now_cycle=since,
        )
        engine = getattr(self.machine, "engine", None)
        expired: list[bool] = []
        timer = None
        if (
            self.watchdog is not None
            and engine is not None
            and not getattr(flag, "is_set", True)
        ):
            from repro.machine.event import delay

            deadline = since + self.watchdog

            def _watchdog_timer() -> Iterator[Any]:
                gap = deadline - engine.now
                if gap > 0:
                    yield delay(gap)
                if not flag.is_set:
                    expired.append(True)
                    flag.set()  # wake the waiter so it can raise

            timer = engine.spawn(_watchdog_timer(), name=f"wd:{self.name}")
        yield from ctx.wait_flag(flag)
        if timer is not None and not timer.done:
            engine.cancel(timer)
        state, self.wait_state = self.wait_state, None
        if expired:
            raise StallError(
                replace(state, now_cycle=ctx.now), self.watchdog
            )

    def send(self, ctx: MachineContext, nbytes: float) -> Iterator[Any]:
        """Producer side: post a message of ``nbytes``.

        Stalls on missing credit (consumer buffer full), then issues
        the stores (one 64-bit store per cycle through the write mesh)
        and raises the consumer's flag when the tail lands.
        """
        if ctx.core_id != self.src_core:
            raise ValueError(
                f"{self.name}: send from core {ctx.core_id}, expected {self.src_core}"
            )
        if self.payload_bytes is not None and nbytes > self.payload_bytes:
            raise ValueError(
                f"{self.name}: message of {nbytes} B exceeds slot size "
                f"{self.payload_bytes} B"
            )
        while self._credits == 0:
            self._credit_flag = self.machine.flag(name=f"{self.name}.credit")
            yield from self._guarded_wait(ctx, self._credit_flag, "producer")
        self._credits -= 1
        self.messages += 1
        self.bytes_moved += nbytes
        ctx.trace.messages_sent += 1

        arrival = ctx.remote_write_arrival(self.dst_core, nbytes)
        data_flag = self.machine.flag(name=f"{self.name}.msg{self.messages}")
        self._data.append(data_flag)
        if self._recv_flag is not None:
            flag, self._recv_flag = self._recv_flag, None
            ctx.set_flag(flag)
        self.machine.set_flag_at(data_flag, arrival)

        # Store issue cost on the producer.
        yield from ctx.issue_stores(nbytes)

    def recv(self, ctx: MachineContext) -> Iterator[Any]:
        """Consumer side: wait for the next message and free its slot."""
        if ctx.core_id != self.dst_core:
            raise ValueError(
                f"{self.name}: recv on core {ctx.core_id}, expected {self.dst_core}"
            )
        while not self._data:
            self._recv_flag = self.machine.flag(name=f"{self.name}.empty")
            yield from self._guarded_wait(ctx, self._recv_flag, "consumer")
        flag = self._data.popleft()
        before = ctx.now
        yield from self._guarded_wait(ctx, flag, "consumer")
        ctx.trace.stall_cycles += ctx.now - before
        ctx.trace.messages_received += 1
        # Free the slot: return a credit to the producer.
        self._credits += 1
        if self._credit_flag is not None:
            cf, self._credit_flag = self._credit_flag, None
            ctx.set_flag(cf)
