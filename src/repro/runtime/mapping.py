"""Task-to-core placement on the mesh.

Paper Section VI: "We have also managed to achieve minimal delay in the
communication between cores in Epiphany because of the custom mapping
of the parallel implementation, which avoids transactions with distant
cores."  This module makes that custom mapping reproducible: a task
graph with per-edge traffic weights, placement strategies (naive linear
vs greedy communication-aware), and the metrics the Fig. 9 analogue
benchmark reports (weighted byte-hops, worst-link congestion).
"""

from __future__ import annotations

from dataclasses import dataclass, field

Coord = tuple[int, int]


@dataclass(frozen=True)
class TaskGraph:
    """A set of named tasks and weighted directed communication edges.

    ``edges[(a, b)]`` is the traffic weight (bytes per unit of work)
    flowing from task ``a`` to task ``b``.
    """

    tasks: tuple[str, ...]
    edges: dict[tuple[str, str], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = set(self.tasks)
        if len(names) != len(self.tasks):
            raise ValueError("duplicate task names")
        for (a, b), w in self.edges.items():
            if a not in names or b not in names:
                raise ValueError(f"edge ({a}, {b}) references unknown task")
            if w < 0:
                raise ValueError(f"negative edge weight on ({a}, {b})")


@dataclass(frozen=True)
class Placement:
    """An assignment of tasks to mesh coordinates."""

    graph: TaskGraph
    coords: dict[str, Coord]
    mesh_rows: int
    mesh_cols: int

    def __post_init__(self) -> None:
        missing = set(self.graph.tasks) - set(self.coords)
        if missing:
            raise ValueError(f"unplaced tasks: {sorted(missing)}")
        seen: dict[Coord, str] = {}
        for t, c in self.coords.items():
            if not (0 <= c[0] < self.mesh_rows and 0 <= c[1] < self.mesh_cols):
                raise ValueError(f"task {t} placed off-mesh at {c}")
            if c in seen:
                raise ValueError(f"tasks {seen[c]} and {t} share core {c}")
            seen[c] = t

    def core_id(self, task: str) -> int:
        r, c = self.coords[task]
        return r * self.mesh_cols + c

    def hops(self, a: str, b: str) -> int:
        ca, cb = self.coords[a], self.coords[b]
        return abs(ca[0] - cb[0]) + abs(ca[1] - cb[1])

    def weighted_hops(self) -> float:
        """Total traffic-weighted hop count -- lower is better."""
        return sum(
            w * self.hops(a, b) for (a, b), w in self.graph.edges.items()
        )

    def max_link_load(self) -> float:
        """Worst per-link traffic under XY routing (congestion proxy).

        This answers the paper's correlator-congestion question: the
        six beam-interpolator flows converge on one core, so the links
        adjacent to it carry the most traffic.
        """
        load: dict[tuple[Coord, Coord], float] = {}
        for (a, b), w in self.graph.edges.items():
            r, c = self.coords[a]
            dst = self.coords[b]
            while c != dst[1]:
                step = 1 if dst[1] > c else -1
                key = ((r, c), (r, c + step))
                load[key] = load.get(key, 0.0) + w
                c += step
            while r != dst[0]:
                step = 1 if dst[0] > r else -1
                key = ((r, c), (r + step, c))
                load[key] = load.get(key, 0.0) + w
                r += step
        return max(load.values(), default=0.0)


def remap_placement(
    placement: Placement, dead_cores: tuple[int, ...] | list[int]
) -> tuple[Placement, dict[str, tuple[int, int]]]:
    """Re-map tasks off dead cores onto free surviving cells.

    Graceful degradation (``docs/architecture.md`` §11): for a core
    that crashed before the run started (a *dead-on-arrival* fault in
    a :class:`~repro.faults.plan.FaultPlan`), the paper's Fig. 9
    autofocus mapping keeps three cores free -- so the dead core's
    task can move onto a survivor at the cost of longer routes.

    Each displaced task (in graph declaration order, deterministic)
    takes the free surviving cell minimising its traffic-weighted hop
    count to its current neighbours; ties break row-major.  Returns
    the new placement plus ``{task: (old_core, new_core)}`` for the
    moved tasks.  Raises
    :class:`~repro.faults.report.FaultReport` (kind ``"unmappable"``)
    when a displaced task has no surviving free cell to go to.
    """
    dead = set(dead_cores)
    if not dead:
        return placement, {}
    rows, cols = placement.mesh_rows, placement.mesh_cols

    def cid(cell: Coord) -> int:
        return cell[0] * cols + cell[1]

    coords = dict(placement.coords)
    occupied = set(coords.values())
    free = [
        (r, c)
        for r in range(rows)
        for c in range(cols)
        if (r, c) not in occupied and cid((r, c)) not in dead
    ]
    victims = [
        t for t in placement.graph.tasks if cid(coords[t]) in dead
    ]
    moved: dict[str, tuple[int, int]] = {}
    for task in victims:
        if not free:
            from repro.faults.report import FaultReport

            raise FaultReport(
                kind="unmappable",
                core=cid(coords[task]),
                detail=(
                    f"task {task!r} lost core {cid(coords[task])} and no "
                    f"surviving free core remains "
                    f"(dead cores: {sorted(dead)})"
                ),
            )
        edges = placement.graph.edges

        def cost(cell: Coord, t: str = task) -> float:
            total = 0.0
            for (a, b), w in edges.items():
                if a == t:
                    peer = coords[b]
                elif b == t:
                    peer = coords[a]
                else:
                    continue
                total += w * (
                    abs(cell[0] - peer[0]) + abs(cell[1] - peer[1])
                )
            return total

        best = min(free, key=lambda cell: (cost(cell), cell))
        free.remove(best)
        old = coords[task]
        coords[task] = best
        moved[task] = (cid(old), cid(best))
    return Placement(placement.graph, coords, rows, cols), moved


@dataclass(frozen=True)
class FabricPlacement:
    """An assignment of tasks to (chip, row, col) cells of a fabric.

    The multi-chip analogue of :class:`Placement`: distances within a
    chip are mesh hops; distances across chips add the e-link penalty
    (``link_penalty`` hop-equivalents per chip boundary crossed -- by
    convention the :attr:`~repro.machine.specs.ChipLinkSpec.
    latency_cycles` of the fabric, since one mesh hop is one cycle).
    Built directly or via :func:`fabric_linear_place` from a
    :class:`~repro.machine.specs.FabricSpec`-shaped object.
    """

    graph: TaskGraph
    coords: dict[str, tuple[int, int, int]]
    n_chips: int
    mesh_rows: int
    mesh_cols: int
    link_penalty: float = 64.0

    def __post_init__(self) -> None:
        missing = set(self.graph.tasks) - set(self.coords)
        if missing:
            raise ValueError(f"unplaced tasks: {sorted(missing)}")
        seen: dict[tuple[int, int, int], str] = {}
        for t, cell in self.coords.items():
            f, r, c = cell
            if not (
                0 <= f < self.n_chips
                and 0 <= r < self.mesh_rows
                and 0 <= c < self.mesh_cols
            ):
                raise ValueError(f"task {t} placed off-fabric at {cell}")
            if cell in seen:
                raise ValueError(
                    f"tasks {seen[cell]} and {t} share core {cell}"
                )
            seen[cell] = t

    @property
    def cores_per_chip(self) -> int:
        return self.mesh_rows * self.mesh_cols

    def global_core(self, task: str) -> int:
        """Fabric-global core id (the FabricSpec addressing bijection)."""
        f, r, c = self.coords[task]
        return f * self.cores_per_chip + r * self.mesh_cols + c

    def cell_of(self, global_core: int) -> tuple[int, int, int]:
        f, local = divmod(global_core, self.cores_per_chip)
        r, c = divmod(local, self.mesh_cols)
        return f, r, c

    def _cell_hops(
        self, a: tuple[int, int, int], b: tuple[int, int, int]
    ) -> float:
        fa, ra, ca = a
        fb, rb, cb = b
        if fa == fb:
            return abs(ra - rb) + abs(ca - cb)
        elink = (0, self.mesh_cols - 1)  # each chip's e-link node
        return (
            abs(ra - elink[0]) + abs(ca - elink[1])
            + abs(fa - fb) * self.link_penalty
            + abs(elink[0] - rb) + abs(elink[1] - cb)
        )

    def hops(self, a: str, b: str) -> float:
        """Hop-equivalent distance between two tasks' cores."""
        return self._cell_hops(self.coords[a], self.coords[b])

    def weighted_hops(self) -> float:
        """Traffic-weighted hop-equivalents -- lower is better.  Cross-
        chip edges dominate through the e-link penalty, which is what
        drives placement (and remapping) to stay chip-local."""
        return sum(
            w * self.hops(a, b) for (a, b), w in self.graph.edges.items()
        )


def fabric_linear_place(graph: TaskGraph, spec) -> FabricPlacement:
    """Naive fabric placement: declaration order, chip-major cells.

    ``spec`` is any :class:`~repro.machine.specs.FabricSpec`-shaped
    object (``n_chips``, ``mesh_rows``, ``mesh_cols``, and a ``link``
    with ``latency_cycles``).
    """
    per = spec.mesh_rows * spec.mesh_cols
    if len(graph.tasks) > spec.n_chips * per:
        raise ValueError("more tasks than fabric cores")
    coords = {}
    for i, t in enumerate(graph.tasks):
        f, local = divmod(i, per)
        coords[t] = (f, local // spec.mesh_cols, local % spec.mesh_cols)
    return FabricPlacement(
        graph=graph,
        coords=coords,
        n_chips=spec.n_chips,
        mesh_rows=spec.mesh_rows,
        mesh_cols=spec.mesh_cols,
        link_penalty=float(spec.link.latency_cycles),
    )


def remap_fabric_placement(
    placement: FabricPlacement,
    dead_cores: tuple[int, ...] | list[int],
) -> tuple[FabricPlacement, dict[str, tuple[int, int]]]:
    """Re-map tasks off dead fabric cores, chip-local first.

    ``dead_cores`` are fabric-global ids.  Each displaced task (graph
    declaration order, deterministic) prefers a surviving free cell on
    **its own chip** (minimum traffic-weighted hops, ties row-major);
    only when its chip has no free survivor does it cross chips, where
    the candidate cost includes the e-link penalty -- so the task lands
    on the chip closest (in crossings) to its traffic peers.  Returns
    the new placement plus ``{task: (old_global, new_global)}``; raises
    :class:`~repro.faults.report.FaultReport` (kind ``"unmappable"``)
    when no surviving free cell exists anywhere in the fabric.
    """
    dead = set(dead_cores)
    if not dead:
        return placement, {}
    per = placement.cores_per_chip

    def gid(cell: tuple[int, int, int]) -> int:
        f, r, c = cell
        return f * per + r * placement.mesh_cols + c

    coords = dict(placement.coords)
    occupied = set(coords.values())
    free = [
        (f, r, c)
        for f in range(placement.n_chips)
        for r in range(placement.mesh_rows)
        for c in range(placement.mesh_cols)
        if (f, r, c) not in occupied and gid((f, r, c)) not in dead
    ]
    victims = [
        t for t in placement.graph.tasks if gid(coords[t]) in dead
    ]
    moved: dict[str, tuple[int, int]] = {}
    edges = placement.graph.edges
    for task in victims:
        if not free:
            from repro.faults.report import FaultReport

            raise FaultReport(
                kind="unmappable",
                core=gid(coords[task]),
                detail=(
                    f"task {task!r} lost fabric core {gid(coords[task])} "
                    f"and no surviving free core remains "
                    f"(dead cores: {sorted(dead)})"
                ),
            )

        def cost(cell: tuple[int, int, int], t: str = task) -> float:
            total = 0.0
            for (a, b), w in edges.items():
                if a == t:
                    peer = coords[b]
                elif b == t:
                    peer = coords[a]
                else:
                    continue
                total += w * placement._cell_hops(cell, peer)
            return total

        home = coords[task][0]
        local = [cell for cell in free if cell[0] == home]
        pool = local if local else free
        best = min(pool, key=lambda cell: (cost(cell), cell))
        free.remove(best)
        old = coords[task]
        coords[task] = best
        moved[task] = (gid(old), gid(best))
    new = FabricPlacement(
        graph=placement.graph,
        coords=coords,
        n_chips=placement.n_chips,
        mesh_rows=placement.mesh_rows,
        mesh_cols=placement.mesh_cols,
        link_penalty=placement.link_penalty,
    )
    return new, moved


def linear_place(
    graph: TaskGraph, mesh_rows: int, mesh_cols: int
) -> Placement:
    """Naive placement: tasks in declaration order, row-major cores."""
    if len(graph.tasks) > mesh_rows * mesh_cols:
        raise ValueError("more tasks than cores")
    coords = {
        t: (i // mesh_cols, i % mesh_cols) for i, t in enumerate(graph.tasks)
    }
    return Placement(graph, coords, mesh_rows, mesh_cols)


def greedy_place(
    graph: TaskGraph, mesh_rows: int, mesh_cols: int, passes: int = 4
) -> Placement:
    """Communication-aware placement by greedy pairwise improvement.

    Starts from the linear placement and repeatedly applies the best
    single swap (including moves to free cores) until no swap reduces
    the weighted hop count, up to ``passes`` sweeps.  Deterministic.
    """
    placement = linear_place(graph, mesh_rows, mesh_cols)
    coords = dict(placement.coords)
    all_cells = [
        (r, c) for r in range(mesh_rows) for c in range(mesh_cols)
    ]

    def cost(assign: dict[str, Coord]) -> float:
        return sum(
            w
            * (
                abs(assign[a][0] - assign[b][0])
                + abs(assign[a][1] - assign[b][1])
            )
            for (a, b), w in graph.edges.items()
        )

    current = cost(coords)
    for _ in range(passes):
        improved = False
        occupied = {c: t for t, c in coords.items()}
        for task in graph.tasks:
            best_delta = 0.0
            best_cell = None
            for cell in all_cells:
                if cell == coords[task]:
                    continue
                trial = dict(coords)
                other = occupied.get(cell)
                if other is not None:
                    trial[other] = coords[task]
                trial[task] = cell
                delta = cost(trial) - current
                if delta < best_delta - 1e-12:
                    best_delta = delta
                    best_cell = cell
            if best_cell is not None:
                other = occupied.get(best_cell)
                old = coords[task]
                if other is not None:
                    coords[other] = old
                    occupied[old] = other
                else:
                    del occupied[old]
                coords[task] = best_cell
                occupied[best_cell] = task
                current += best_delta
                improved = True
        if not improved:
            break
    return Placement(graph, coords, mesh_rows, mesh_cols)
