"""Programming models on top of the machine simulator.

The paper uses two parallelisation styles (Section V-A):

- **SPMD** (:mod:`repro.runtime.spmd`) for FFBP -- the same program on
  every core, coarse-grained data partitioning of the output image
  (paper Fig. 6), barrier synchronisation between merge iterations.
- **MPMD** (:mod:`repro.runtime.mpmd`) for the autofocus criterion --
  a different program per core, streaming intermediate data between
  neighbours over flag-synchronised channels
  (:mod:`repro.runtime.channels`), placed on the mesh by
  :mod:`repro.runtime.mapping` (paper Fig. 9).
"""

from repro.runtime.channels import Channel
from repro.runtime.mapping import Placement, TaskGraph, greedy_place, linear_place
from repro.runtime.mpmd import Pipeline, Task
from repro.runtime.spmd import partition, run_spmd

__all__ = [
    "Channel",
    "Placement",
    "TaskGraph",
    "greedy_place",
    "linear_place",
    "Pipeline",
    "Task",
    "partition",
    "run_spmd",
]
