"""MPMD streaming pipelines.

Paper Section V-C: the parallel autofocus "uses different source codes
for the different Epiphany cores ... the overall algorithm is
partitioned into several tasks, each of which is then implemented on an
individual core" with intermediate data "passed in a streaming manner
between the compute nodes".

A :class:`Pipeline` owns a set of named :class:`Task` programs, a
placement of tasks onto cores, and the channels that realise the task
graph's edges.  Running the pipeline spawns every task on its core and
returns the chip-level result.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator

from repro.faults.report import (
    CONTAINED_FAILURES,
    BlameReport,
    DeadlockReport,
)
from repro.machine.api import Machine, MachineContext, Programs, RunResult
from repro.runtime.channels import Channel
from repro.runtime.mapping import Placement

TaskProgram = Callable[
    [MachineContext, dict[str, Channel], dict[str, Channel]],
    Iterator[Any],
]
"""A task body: ``(ctx, in_channels, out_channels) -> generator``.
Channel dicts are keyed by the peer task's name."""


@dataclass(frozen=True)
class Task:
    """One pipeline stage: a name and its program."""

    name: str
    program: TaskProgram


class Pipeline:
    """A placed MPMD task pipeline on one machine (any backend)."""

    def __init__(
        self,
        machine: Machine,
        tasks: list[Task],
        placement: Placement,
        channel_capacity: int = 2,
        payload_bytes: dict[tuple[str, str], int] | None = None,
        watchdog: int | None = None,
    ) -> None:
        self.machine = machine
        self.placement = placement
        by_name = {t.name: t for t in tasks}
        if set(by_name) != set(placement.graph.tasks):
            raise ValueError(
                "tasks and placement graph disagree: "
                f"{sorted(by_name)} vs {sorted(placement.graph.tasks)}"
            )
        self.tasks = by_name
        self.channels: dict[tuple[str, str], Channel] = {}
        payload_bytes = payload_bytes or {}
        for (a, b) in placement.graph.edges:
            self.channels[(a, b)] = Channel(
                machine,
                placement.core_id(a),
                placement.core_id(b),
                capacity=channel_capacity,
                payload_bytes=payload_bytes.get((a, b)),
                name=f"{a}->{b}",
                watchdog=watchdog,
            )

    def inputs_of(self, task: str) -> dict[str, Channel]:
        return {
            a: ch for (a, b), ch in self.channels.items() if b == task
        }

    def outputs_of(self, task: str) -> dict[str, Channel]:
        return {
            b: ch for (a, b), ch in self.channels.items() if a == task
        }

    def run(self, max_cycles: int | None = None) -> RunResult:
        """Spawn every task on its placed core and run to completion.

        Failure containment (``docs/architecture.md`` §11):

        - a backend deadlock (event engine *or* analytic) is converted
          into a :class:`~repro.faults.report.DeadlockReport` carrying
          the per-channel wait states at the deadlock cycle, instead of
          surfacing as a bare engine error;
        - a run cut short by ``max_cycles`` returns with
          ``stalled=True`` and the pending channel waits in
          ``wait_states`` -- it never exhausts the budget silently.
        """
        programs: Programs = {}
        for name, task in self.tasks.items():
            core = self.placement.core_id(name)
            ins = self.inputs_of(name)
            outs = self.outputs_of(name)

            def make(body: TaskProgram, i: dict, o: dict):
                def kernel(ctx: MachineContext) -> Iterator[Any]:
                    return body(ctx, i, o)

                return kernel

            programs[core] = make(task.program, ins, outs)
        try:
            result = self.machine.run(programs, max_cycles=max_cycles)
        except CONTAINED_FAILURES:
            raise
        except RuntimeError as exc:
            if "deadlock" in str(exc).lower():
                raise DeadlockReport(
                    cycle=self.machine.now,
                    waits=self.blocked_waits(),
                    note=str(exc),
                ) from exc
            raise
        if result.stalled:
            result = replace(result, wait_states=self.blocked_waits())
        return result

    def blocked_waits(self) -> tuple[BlameReport, ...]:
        """The channels with a flag wait pending right now, blamed.

        Ordered by waiting core for stable reports; ``now_cycle`` is
        refreshed to the machine clock at collection time.
        """
        waits = []
        for ch in self.channels.values():
            state = ch.wait_state
            if state is not None:
                waits.append(replace(state, now_cycle=self.machine.now))
        return tuple(sorted(waits, key=lambda w: (w.waiter_core, w.channel)))

    def traffic_summary(self) -> dict[tuple[str, str], dict[str, Any]]:
        """Per-edge message/byte/hop statistics after a run."""
        return {
            edge: {
                "messages": ch.messages,
                "bytes": ch.bytes_moved,
                "hops": ch.hops,
                "byte_hops": ch.bytes_moved * ch.hops,
            }
            for edge, ch in self.channels.items()
        }
