"""The asyncio image-formation service (``repro serve``).

Layering (docs/architecture.md §14): the service is *glue, not
physics*.  It owns sockets, framing, batching and deadlines; every
answer it produces comes from the layers below --

- **workers** (:mod:`repro.serve.workers`): pure, picklable task
  functions over the ``sar``/``kernels`` stacks,
- **execution** (:mod:`repro.exec`): each batch runs through an
  :class:`~repro.exec.runner.ExperimentRunner` whose attached
  :class:`~repro.exec.cache.ResultCache` doubles as the content-
  addressed *response cache* -- a repeated identical request is served
  from disk, byte-identical, ``code_version()``-invalidated, and the
  hit is counted,
- **performance** (:mod:`repro.perf`): merge geometry memoised across
  tenants sharing a grid,
- **faults** (:mod:`repro.faults`): watchdog stalls and injected
  faults surface as structured error responses with blame reports,
  and accumulate in the ``health`` diagnostics.

Scheduling: requests land on one queue; a batcher drains it, waits
``batch_window_ms`` for compatible company, groups by cache payload
(identical requests in one window *coalesce* onto a single compute)
and dispatches each group to a worker-thread pool.  Per-request
deadlines convert to structured ``deadline`` error responses -- a
slow request can never hang its connection.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.exec.cache import ResultCache, code_version
from repro.exec.runner import ExperimentRunner, TaskSpec
from repro.serve import protocol, workers
from repro.serve.protocol import (
    HealthRequest,
    ImageRequest,
    ProfileRequest,
    ProtocolError,
    RequestError,
    ShutdownRequest,
    encode_frame,
    error_response,
    read_frame,
)

__all__ = ["ServeSettings", "ServeStats", "ImageService"]


@dataclass(frozen=True)
class ServeSettings:
    """Tunables of one service instance."""

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    batch_window_ms: float = 5.0
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    cache_dir: str | None = None
    """Response-cache directory; ``None`` uses a private temporary
    directory (cleaned up on close) so caching is on by default."""
    no_cache: bool = False
    default_deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.batch_window_ms < 0:
            raise ValueError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}"
            )
        if self.max_frame_bytes < 1024:
            raise ValueError(
                f"max_frame_bytes must be >= 1024, got {self.max_frame_bytes}"
            )


@dataclass
class ServeStats:
    """Rolling counters exposed through ``health`` responses."""

    served: int = 0
    errors: int = 0
    batches: int = 0
    coalesced: int = 0
    deadline_misses: int = 0
    streams: int = 0
    contained_faults: int = 0
    stalls: int = 0
    last_fault: str | None = None
    last_blame: dict | None = None


@dataclass
class _Pending:
    """One batchable request waiting for its compute."""

    request: ImageRequest | ProfileRequest
    future: asyncio.Future = field(default_factory=asyncio.Future)


class ImageService:
    """Long-running asyncio server over the length-prefixed protocol."""

    def __init__(self, settings: ServeSettings | None = None) -> None:
        self.settings = settings or ServeSettings()
        self.stats = ServeStats()
        self._server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue[_Pending] = asyncio.Queue()
        self._batcher: asyncio.Task | None = None
        self._group_tasks: set[asyncio.Task] = set()
        self._pool = ThreadPoolExecutor(
            max_workers=self.settings.workers,
            thread_name_prefix="repro-serve",
        )
        self._tmpdir = None
        if self.settings.no_cache:
            self._cache: ResultCache | None = None
        elif self.settings.cache_dir is not None:
            self._cache = ResultCache(self.settings.cache_dir)
        else:
            import tempfile

            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-serve-")
            self._cache = ResultCache(self._tmpdir.name)
        self._connections = 0
        self._started = time.monotonic()
        self._shutdown = asyncio.Event()

    # -- lifecycle -------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("service is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_client, self.settings.host, self.settings.port
        )
        self._started = time.monotonic()
        self._batcher = asyncio.create_task(self._batch_loop())

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`close`)."""
        await self._shutdown.wait()
        await self.close()

    async def close(self) -> None:
        """Drain and stop: no new connections, pending groups finish."""
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        if self._group_tasks:
            await asyncio.gather(*self._group_tasks, return_exceptions=True)
        self._pool.shutdown(wait=True)
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    # -- connection handling ---------------------------------------------

    async def _on_client(self, reader, writer) -> None:
        self._connections += 1
        lock = asyncio.Lock()

        async def send(obj: dict) -> None:
            async with lock:
                writer.write(encode_frame(obj, self.settings.max_frame_bytes))
                await writer.drain()

        try:
            while True:
                try:
                    frame = await read_frame(
                        reader, self.settings.max_frame_bytes
                    )
                except ProtocolError as exc:
                    self.stats.errors += 1
                    if not exc.recoverable:
                        break
                    await send(error_response(None, exc.code, exc.detail))
                    continue
                if frame is None:
                    break
                try:
                    request = protocol.parse_request(frame)
                except RequestError as exc:
                    self.stats.errors += 1
                    await send(
                        error_response(frame.get("id"), exc.code, exc.detail)
                    )
                    continue
                await self._dispatch(request, send)
                if isinstance(request, ShutdownRequest):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request, send) -> None:
        if isinstance(request, HealthRequest):
            await send(self._health(request.id))
            self.stats.served += 1
            return
        if isinstance(request, ShutdownRequest):
            await send({"id": request.id, "type": "ok", "detail": "shutting down"})
            self.stats.served += 1
            self._shutdown.set()
            return
        if isinstance(request, ImageRequest) and request.stream:
            await self._run_streaming(request, send)
            return
        await self._run_batched(request, send)

    # -- request execution -----------------------------------------------

    def _deadline_of(self, request) -> float | None:
        if request.deadline_ms is not None:
            return request.deadline_ms / 1e3
        if self.settings.default_deadline_ms is not None:
            return self.settings.default_deadline_ms / 1e3
        return None

    async def _run_batched(self, request, send) -> None:
        pending = _Pending(request=request)
        await self._queue.put(pending)
        t0 = time.perf_counter()
        try:
            value, cached = await asyncio.wait_for(
                pending.future, timeout=self._deadline_of(request)
            )
        except asyncio.TimeoutError:
            self.stats.errors += 1
            self.stats.deadline_misses += 1
            await send(
                error_response(
                    request.id,
                    "deadline",
                    f"request exceeded its {request.deadline_ms or self.settings.default_deadline_ms} ms deadline",
                )
            )
            return
        except Exception as exc:  # structured, never a connection drop
            self.stats.errors += 1
            await send(error_response(request.id, "internal", str(exc)))
            return
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        if isinstance(value, dict) and "error" in value:
            # A contained fault (stall blame, injected fault) from the
            # profile path: structured error, counted in health.
            err = value["error"]
            self.stats.errors += 1
            self.stats.contained_faults += 1
            self.stats.last_fault = err.get("detail")
            if err.get("code") == "stall":
                self.stats.stalls += 1
                self.stats.last_blame = err.get("blame")
            response = error_response(
                request.id, err.get("code", "fault"), err.get("detail", "")
            )
            response["outcome"] = err.get("outcome")
            if err.get("blame"):
                response["blame"] = err["blame"]
            await send(response)
            return
        self.stats.served += 1
        response = dict(value)
        response.update(
            id=request.id,
            type="result",
            cached=bool(cached),
            elapsed_ms=round(elapsed_ms, 3),
        )
        await send(response)

    async def _run_streaming(self, request: ImageRequest, send) -> None:
        """FFBP with merge levels streamed back as ``partial`` frames."""
        self.stats.streams += 1
        loop = asyncio.get_running_loop()
        frames: asyncio.Queue = asyncio.Queue()
        _DONE = object()

        def emit(frame: dict) -> None:
            loop.call_soon_threadsafe(frames.put_nowait, frame)

        def run() -> dict:
            try:
                return workers.form_image_streaming(
                    request.payload(), emit, stream_data=request.stream_data
                )
            finally:
                loop.call_soon_threadsafe(frames.put_nowait, _DONE)

        job = loop.run_in_executor(self._pool, run)
        t0 = time.perf_counter()
        deadline = self._deadline_of(request)

        async def forward() -> dict:
            while True:
                frame = await frames.get()
                if frame is _DONE:
                    break
                partial = dict(frame)
                partial.update(id=request.id, type="partial")
                await send(partial)
            return await job

        try:
            value = await asyncio.wait_for(forward(), timeout=deadline)
        except asyncio.TimeoutError:
            self.stats.errors += 1
            self.stats.deadline_misses += 1
            await send(
                error_response(
                    request.id, "deadline",
                    f"stream exceeded its {request.deadline_ms} ms deadline",
                )
            )
            return
        except Exception as exc:
            self.stats.errors += 1
            await send(error_response(request.id, "internal", str(exc)))
            return
        self.stats.served += 1
        response = dict(value)
        response.update(
            id=request.id,
            type="result",
            cached=False,
            elapsed_ms=round((time.perf_counter() - t0) * 1e3, 3),
        )
        await send(response)

    # -- batching ---------------------------------------------------------

    async def _batch_loop(self) -> None:
        """Drain the queue, gather a window, dispatch groups."""
        loop = asyncio.get_running_loop()
        window = self.settings.batch_window_ms / 1e3
        while True:
            batch = [await self._queue.get()]
            deadline = loop.time() + window
            while True:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            for group in self._group(batch):
                task = asyncio.create_task(self._run_group(group))
                self._group_tasks.add(task)
                task.add_done_callback(self._group_tasks.discard)

    @staticmethod
    def _group(batch: list[_Pending]) -> list[list[_Pending]]:
        """Split a window's requests into per-backend-compatible groups.

        Image requests batch together; profile requests batch per
        backend spec (they share a machine build and, on the event
        backend, interleave poorly with host-numpy work).
        """
        groups: dict[tuple, list[_Pending]] = {}
        for pending in batch:
            req = pending.request
            if isinstance(req, ProfileRequest):
                key = ("profile", req.backend)
            else:
                key = ("image",)
            groups.setdefault(key, []).append(pending)
        return list(groups.values())

    async def _run_group(self, group: list[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        self.stats.batches += 1
        # Coalesce identical payloads: one compute, fanned out to all.
        unique: dict[str, list[_Pending]] = {}
        from repro.exec.cache import stable_digest

        for pending in group:
            unique.setdefault(
                stable_digest(pending.request.payload()), []
            ).append(pending)
        self.stats.coalesced += len(group) - len(unique)
        order = list(unique.items())
        try:
            outcomes = await loop.run_in_executor(
                self._pool,
                _execute_group,
                [waiters[0].request.payload() for _, waiters in order],
                [digest for digest, _ in order],
                self._cache,
            )
        except Exception as exc:
            for _, waiters in order:
                for pending in waiters:
                    if not pending.future.done():
                        pending.future.set_exception(exc)
            return
        for (_, waiters), outcome in zip(order, outcomes):
            value, cached, failure = outcome
            for pending in waiters:
                if pending.future.done():
                    continue  # its client already timed out
                if failure is not None:
                    pending.future.set_exception(RuntimeError(failure))
                else:
                    pending.future.set_result((value, cached))

    # -- health ----------------------------------------------------------

    def _health(self, req_id) -> dict:
        from repro.perf import memo_stats

        s = self.stats
        return {
            "id": req_id,
            "type": "health",
            "status": "ok",
            "protocol": protocol.PROTOCOL,
            "code_version": code_version(),
            "uptime_s": round(time.monotonic() - self._started, 3),
            "connections": self._connections,
            "served": s.served,
            "errors": s.errors,
            "batches": s.batches,
            "coalesced": s.coalesced,
            "deadline_misses": s.deadline_misses,
            "streams": s.streams,
            "cache": None if self._cache is None else self._cache.stats(),
            "memo": {
                k: v
                for k, v in memo_stats().items()
                if isinstance(v, (int, float))
            },
            "faults": {
                "contained": s.contained_faults,
                "stalls": s.stalls,
                "last": s.last_fault,
                "last_blame": s.last_blame,
            },
        }


def _execute_group(
    payloads: list[dict],
    digests: list[str],
    cache: ResultCache | None,
) -> list[tuple[Any, bool, str | None]]:
    """Run one compatible group through an :class:`ExperimentRunner`.

    Runs in a worker thread.  Returns ``(value, cached, failure)`` per
    payload, in order; a failure is the formatted ``TaskFailure`` text
    (the task's own structured child traceback), never an exception,
    so one bad request cannot poison its batch-mates.
    """
    tasks = []
    for payload, digest in zip(payloads, digests):
        fn = (
            workers.profile_kernel
            if payload.get("kind") == "profile"
            else workers.form_image
        )
        tasks.append(
            TaskSpec(key=f"serve/{payload.get('kind')}/{digest}", fn=fn, args=(payload,))
        )
    runner = ExperimentRunner(jobs=1, cache=cache)
    results = runner.run(tasks, strict=False)
    out: list[tuple[Any, bool, str | None]] = []
    for res in results:
        if res.ok:
            out.append((res.value, res.cached, None))
        else:
            out.append((None, False, res.failure.format()))
    return out
