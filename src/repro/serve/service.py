"""The asyncio image-formation service (``repro serve``).

Layering (docs/architecture.md §14): the service is *glue, not
physics*.  It owns sockets, framing, batching and deadlines; every
answer it produces comes from the layers below --

- **workers** (:mod:`repro.serve.workers`): pure, picklable task
  functions over the ``sar``/``kernels`` stacks,
- **execution** (:mod:`repro.exec`): each batch runs through an
  :class:`~repro.exec.runner.ExperimentRunner` whose attached
  :class:`~repro.exec.cache.ResultCache` doubles as the content-
  addressed *response cache* -- a repeated identical request is served
  from disk, byte-identical, ``code_version()``-invalidated, and the
  hit is counted,
- **performance** (:mod:`repro.perf`): merge geometry memoised across
  tenants sharing a grid,
- **faults** (:mod:`repro.faults`): watchdog stalls and injected
  faults surface as structured error responses with blame reports,
  and accumulate in the ``health`` diagnostics,
- **resilience** (:mod:`repro.serve.resilience`, §15): admission
  control bounds in-flight work (structured ``overloaded`` + retry
  hint instead of queue growth), contained faults and broken pools are
  retried with seeded deterministic backoff, and a per-backend-spec
  circuit breaker degrades profile requests one rung down the
  ladder (``event:*`` onto byte-identical ``replay(event:*)``, then
  ``analytic:*``) when the real backend keeps failing.

Scheduling: requests land on one queue; a batcher drains it, waits
``batch_window_ms`` for compatible company, groups by cache payload
(identical requests in one window *coalesce* onto a single compute)
and dispatches each group to a worker-thread pool.  Per-request
deadlines convert to structured ``deadline`` error responses -- a
slow request can never hang its connection.  With ``group_jobs >= 2``
each group fans out over a *process* pool whose death is contained
(``broken-pool`` failures, pool rebuilt, survivors replayed) -- one
poisoned request cannot take down its batch window.  ``close()``
drains: queued and in-flight requests get their terminal response
before the listener and pools go away.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.exec.cache import ResultCache, code_version, stable_digest
from repro.exec.runner import ExperimentRunner, TaskSpec
from repro.faults.report import CONTAINED_CODES
from repro.serve import protocol, workers
from repro.serve.protocol import (
    HealthRequest,
    ImageRequest,
    ProfileRequest,
    ProtocolError,
    RequestError,
    ShutdownRequest,
    encode_frame,
    error_response,
    read_frame,
)
from repro.serve.resilience import (
    DEFAULT_RESILIENCE_SEED,
    AdmissionController,
    CircuitBreaker,
    RetryPolicy,
    RollingWindow,
)

__all__ = ["ServeSettings", "ServeStats", "ImageService"]


@dataclass(frozen=True)
class ServeSettings:
    """Tunables of one service instance."""

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    batch_window_ms: float = 5.0
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    cache_dir: str | None = None
    """Response-cache directory; ``None`` uses a private temporary
    directory (cleaned up on close) so caching is on by default."""
    no_cache: bool = False
    default_deadline_ms: float | None = None
    max_inflight: int = 64
    """Admission budget: work requests in flight across all
    connections; one more gets a structured ``overloaded`` answer."""
    max_connection_inflight: int = 8
    """Per-connection concurrency cap (a single greedy client cannot
    drain the whole admission budget)."""
    max_retries: int = 1
    """Seeded-backoff retries per request on contained faults and
    broken pools; ``0`` disables retrying."""
    retry_backoff_ms: float = 25.0
    """Base of the exponential retry backoff (jittered, capped)."""
    breaker_window: int = 8
    """Rolling outcome window per backend spec for the breaker."""
    breaker_failures: int = 4
    """Failures within the window that trip the breaker; ``0``
    disables degradation entirely."""
    breaker_cooldown: int = 4
    """Degraded requests served per open period before a probe."""
    group_jobs: int = 1
    """``ExperimentRunner`` jobs per batch group; ``1`` runs inline
    (serial, no pool), ``>= 2`` fans out over worker processes whose
    crashes are contained and healed."""
    group_retries: int = 0
    """Runner-level retries inside one group (pool self-healing
    replays broken-pool survivors without a serve round trip)."""
    resilience_seed: int = DEFAULT_RESILIENCE_SEED
    """Root seed of the deterministic retry jitter."""
    allow_chaos: bool = False
    """Accept ``fail_marker`` chaos requests (worker suicide hooks);
    requires ``group_jobs >= 2`` so the kill hits a pool process, not
    the server."""
    window_s: float = 60.0
    """Horizon of the rolling rate window in ``health``."""

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.batch_window_ms < 0:
            raise ValueError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}"
            )
        if self.max_frame_bytes < 1024:
            raise ValueError(
                f"max_frame_bytes must be >= 1024, got {self.max_frame_bytes}"
            )
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.max_connection_inflight < 1:
            raise ValueError(
                "max_connection_inflight must be >= 1, got "
                f"{self.max_connection_inflight}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff_ms <= 0:
            raise ValueError(
                f"retry_backoff_ms must be positive, got {self.retry_backoff_ms}"
            )
        if self.breaker_failures < 0:
            raise ValueError(
                f"breaker_failures must be >= 0, got {self.breaker_failures}"
            )
        if self.breaker_failures > self.breaker_window:
            raise ValueError(
                f"breaker_failures ({self.breaker_failures}) cannot exceed "
                f"breaker_window ({self.breaker_window})"
            )
        if self.group_jobs < 1:
            raise ValueError(
                f"group_jobs must be >= 1, got {self.group_jobs}"
            )
        if self.group_retries < 0:
            raise ValueError(
                f"group_retries must be >= 0, got {self.group_retries}"
            )
        if self.allow_chaos and self.group_jobs < 2:
            raise ValueError(
                "allow_chaos requires group_jobs >= 2: a fail_marker kill "
                "in an inline (jobs=1) group would take the server down"
            )
        if self.window_s <= 0:
            raise ValueError(
                f"window_s must be positive, got {self.window_s}"
            )


@dataclass
class ServeStats:
    """Cumulative counters exposed through ``health`` responses.

    Lifetime totals; the last-N-seconds view lives in the ``window``
    block of the health report (:class:`RollingWindow`)."""

    served: int = 0
    errors: int = 0
    batches: int = 0
    coalesced: int = 0
    deadline_misses: int = 0
    streams: int = 0
    contained_faults: int = 0
    stalls: int = 0
    overloaded: int = 0
    retries: int = 0
    degraded: int = 0
    pool_rebuilds: int = 0
    last_fault: str | None = None
    last_blame: dict | None = None


@dataclass
class _Pending:
    """One batchable request waiting for its compute.

    The future resolves to ``("ok", value, cached)`` or
    ``("fail", kind, text)`` -- never an exception for a *task-level*
    failure, so the dispatch side can classify retryability."""

    request: ImageRequest | ProfileRequest
    future: asyncio.Future = field(default_factory=asyncio.Future)


class ImageService:
    """Long-running asyncio server over the length-prefixed protocol."""

    def __init__(self, settings: ServeSettings | None = None) -> None:
        self.settings = settings or ServeSettings()
        self.stats = ServeStats()
        self._server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue[_Pending] = asyncio.Queue()
        self._batcher: asyncio.Task | None = None
        self._group_tasks: set[asyncio.Task] = set()
        self._dispatch_tasks: set[asyncio.Task] = set()
        self._writers: set = set()
        self._pool = ThreadPoolExecutor(
            max_workers=self.settings.workers,
            thread_name_prefix="repro-serve",
        )
        self._tmpdir = None
        if self.settings.no_cache:
            self._cache: ResultCache | None = None
        elif self.settings.cache_dir is not None:
            self._cache = ResultCache(self.settings.cache_dir)
        else:
            import tempfile

            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-serve-")
            self._cache = ResultCache(self._tmpdir.name)
        self._admission = AdmissionController(
            budget=self.settings.max_inflight,
            retry_after_ms=max(self.settings.batch_window_ms, 1.0) * 4,
        )
        self._retry = RetryPolicy(
            max_retries=self.settings.max_retries,
            base_ms=self.settings.retry_backoff_ms,
            seed=self.settings.resilience_seed,
        )
        self._breaker = CircuitBreaker(
            window=self.settings.breaker_window,
            failures=self.settings.breaker_failures,
            cooldown=self.settings.breaker_cooldown,
        )
        self._window = RollingWindow(horizon_s=self.settings.window_s)
        self._connections = 0
        self._started = time.monotonic()
        self._shutdown = asyncio.Event()
        self._closing = False

    # -- lifecycle -------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("service is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_client, self.settings.host, self.settings.port
        )
        self._started = time.monotonic()
        self._batcher = asyncio.create_task(self._batch_loop())

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`close`)."""
        await self._shutdown.wait()
        await self.close()

    async def close(self) -> None:
        """Drain and stop: every in-flight request still gets its
        terminal response.

        Order matters: mark closing (admission rejects new work with a
        structured "draining" answer), stop listening, stop the
        batcher, flush whatever it left on the queue into groups, then
        settle dispatch/group tasks to quiescence -- a draining retry
        re-enters through :meth:`_enqueue`, which runs it as its own
        group once the batcher is gone, so no future is ever orphaned.
        Only then close lingering idle connections (their handlers are
        parked in ``read_frame``) and the pools.
        """
        self._closing = True
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        while True:
            leftovers = []
            while not self._queue.empty():
                leftovers.append(self._queue.get_nowait())
            for group in self._group(leftovers):
                self._spawn_group(group)
            tasks = [
                t
                for t in (*self._dispatch_tasks, *self._group_tasks)
                if not t.done()
            ]
            if not leftovers and not tasks:
                break
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        for writer in list(self._writers):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=True)
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    # -- connection handling ---------------------------------------------

    async def _on_client(self, reader, writer) -> None:
        self._connections += 1
        self._writers.add(writer)
        lock = asyncio.Lock()
        conn_tasks: set[asyncio.Task] = set()

        async def send(obj: dict) -> None:
            async with lock:
                writer.write(encode_frame(obj, self.settings.max_frame_bytes))
                await writer.drain()

        try:
            while True:
                try:
                    frame = await read_frame(
                        reader, self.settings.max_frame_bytes
                    )
                except ProtocolError as exc:
                    self._mark_error()
                    if not exc.recoverable:
                        break
                    await send(error_response(None, exc.code, exc.detail))
                    continue
                if frame is None:
                    break
                try:
                    request = protocol.parse_request(frame)
                except RequestError as exc:
                    self._mark_error()
                    await send(
                        error_response(frame.get("id"), exc.code, exc.detail)
                    )
                    continue
                if isinstance(request, HealthRequest):
                    await send(self._health(request.id))
                    self._mark_served()
                    continue
                if isinstance(request, ShutdownRequest):
                    await send(
                        {"id": request.id, "type": "ok", "detail": "shutting down"}
                    )
                    self._mark_served()
                    self._shutdown.set()
                    break
                # Work request: chaos gate, then admission control.
                if (
                    isinstance(request, ProfileRequest)
                    and request.fail_marker is not None
                    and not self.settings.allow_chaos
                ):
                    self._mark_error()
                    await send(
                        error_response(
                            request.id,
                            "bad-request",
                            "'fail_marker' requires a server started with "
                            "allow_chaos (and group_jobs >= 2)",
                        )
                    )
                    continue
                if self._closing:
                    await self._reject_overloaded(
                        request.id,
                        "server is draining for shutdown",
                        self._admission.retry_hint(),
                        send,
                    )
                    continue
                conn_tasks = {t for t in conn_tasks if not t.done()}
                if len(conn_tasks) >= self.settings.max_connection_inflight:
                    await self._reject_overloaded(
                        request.id,
                        f"connection exceeded its "
                        f"{self.settings.max_connection_inflight} in-flight "
                        f"request cap",
                        self._admission.retry_hint(),
                        send,
                    )
                    continue
                hint = self._admission.try_admit()
                if hint is not None:
                    await self._reject_overloaded(
                        request.id,
                        f"server is at its {self.settings.max_inflight} "
                        f"in-flight request budget",
                        hint,
                        send,
                    )
                    continue
                task = asyncio.create_task(self._run_admitted(request, send))
                conn_tasks.add(task)
                self._dispatch_tasks.add(task)
                task.add_done_callback(self._dispatch_tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            # A closing connection still drains its in-flight work --
            # the shutdown contract: one terminal response per request.
            if conn_tasks:
                await asyncio.gather(*conn_tasks, return_exceptions=True)
            self._connections -= 1
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _run_admitted(self, request, send) -> None:
        """One admitted work request, releasing its admission slot."""
        try:
            if isinstance(request, ImageRequest) and request.stream:
                await self._run_streaming(request, send)
            else:
                await self._run_batched(request, send)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._admission.release()

    async def _reject_overloaded(
        self, req_id, detail: str, hint_ms: float, send
    ) -> None:
        self._mark_error()
        self.stats.overloaded += 1
        self._window.record("overloaded")
        response = error_response(req_id, "overloaded", detail)
        response["retry_after_ms"] = hint_ms
        await send(response)

    # -- stats plumbing ---------------------------------------------------

    def _mark_served(self) -> None:
        self.stats.served += 1
        self._window.record("served")

    def _mark_error(self) -> None:
        self.stats.errors += 1
        self._window.record("error")

    # -- request execution -----------------------------------------------

    def _effective_deadline_ms(self, request) -> float | None:
        if request.deadline_ms is not None:
            return request.deadline_ms
        return self.settings.default_deadline_ms

    def _deadline_of(self, request) -> float | None:
        deadline_ms = self._effective_deadline_ms(request)
        return None if deadline_ms is None else deadline_ms / 1e3

    async def _enqueue(self, pending: _Pending) -> None:
        """Hand a request to the batcher -- or, once the batcher is
        gone (draining close), run it as its own group so its future
        still resolves."""
        if self._batcher is None:
            self._spawn_group([pending])
        else:
            await self._queue.put(pending)

    def _retry_delay_s(
        self,
        retryable: bool,
        retries: int,
        retry_key: str,
        deadline: float | None,
        t0: float,
    ) -> float | None:
        """Backoff before the next retry, or ``None`` to stop.

        Stops when the failure class is terminal, the retry budget is
        spent, the server is draining, or the backoff would not fit in
        the request's remaining deadline."""
        if not retryable or retries >= self._retry.max_retries or self._closing:
            return None
        delay = self._retry.backoff_ms(retry_key, retries + 1) / 1e3
        if deadline is not None:
            if (time.perf_counter() - t0) + delay >= deadline:
                return None
        return delay

    def _breaker_record(self, spec: str | None, verdict: str, ok: bool) -> None:
        """Feed the terminal outcome of a real-backend attempt."""
        if spec is not None and verdict in ("pass", "probe"):
            self._breaker.record(spec, ok)

    async def _run_batched(self, request, send) -> None:
        t0 = time.perf_counter()
        deadline = self._deadline_of(request)
        spec = request.backend if isinstance(request, ProfileRequest) else None
        verdict, substitute = "pass", None
        degraded = False
        effective = request
        if spec is not None:
            verdict, substitute = self._breaker.decide(spec)
            if verdict == "degrade":
                effective = dataclasses.replace(request, backend=substitute)
                degraded = True
                self.stats.degraded += 1
                self._window.record("degraded")
        retry_key = stable_digest(effective.payload())
        retries = 0
        while True:
            pending = _Pending(request=effective)
            await self._enqueue(pending)
            timeout = None
            if deadline is not None:
                timeout = max(deadline - (time.perf_counter() - t0), 0.0)
            try:
                outcome = await asyncio.wait_for(pending.future, timeout=timeout)
            except asyncio.TimeoutError:
                self._breaker_record(spec, verdict, ok=False)
                self._mark_error()
                self.stats.deadline_misses += 1
                self._window.record("deadline_miss")
                response = error_response(
                    request.id,
                    "deadline",
                    f"request exceeded its "
                    f"{self._effective_deadline_ms(request)} ms deadline",
                )
                response["retries"] = retries
                await send(response)
                return
            except Exception as exc:  # structured, never a connection drop
                self._mark_error()
                await send(error_response(request.id, "internal", str(exc)))
                return
            if outcome[0] == "ok":
                _, value, cached = outcome
                err = value.get("error") if isinstance(value, dict) else None
                if err is None:
                    self._breaker_record(spec, verdict, ok=True)
                    self._mark_served()
                    response = dict(value)
                    response.update(
                        id=request.id,
                        type="result",
                        cached=bool(cached),
                        elapsed_ms=round((time.perf_counter() - t0) * 1e3, 3),
                        retries=retries,
                    )
                    if degraded:
                        response.update(
                            degraded=True, degraded_to=effective.backend
                        )
                    await send(response)
                    return
                # A contained fault (stall blame, injected fault) from
                # the profile path: retryable -- the work is pure and
                # the diagnosis structured.
                retryable = err.get("code") in CONTAINED_CODES
                delay = self._retry_delay_s(
                    retryable, retries, retry_key, deadline, t0
                )
                if delay is not None:
                    retries += 1
                    self.stats.retries += 1
                    self._window.record("retry")
                    await asyncio.sleep(delay)
                    continue
                self._breaker_record(spec, verdict, ok=False)
                await self._send_contained(
                    request, err, retries, degraded, effective, send
                )
                return
            # Runner-level failure: broken pool (retryable -- the pool
            # heals and the work is uncached), timeout, or task error.
            _, fkind, ftext = outcome
            delay = self._retry_delay_s(
                fkind == "broken-pool", retries, retry_key, deadline, t0
            )
            if delay is not None:
                retries += 1
                self.stats.retries += 1
                self._window.record("retry")
                await asyncio.sleep(delay)
                continue
            self._breaker_record(spec, verdict, ok=False)
            self._mark_error()
            code = fkind if fkind in ("broken-pool", "timeout") else "internal"
            response = error_response(request.id, code, ftext)
            response["retries"] = retries
            await send(response)
            return

    async def _send_contained(
        self, request, err: dict, retries: int, degraded: bool, effective, send
    ) -> None:
        """Answer with a contained fault's structured diagnosis."""
        self._mark_error()
        self.stats.contained_faults += 1
        self._window.record("contained_fault")
        self.stats.last_fault = err.get("detail")
        if err.get("code") == "stall":
            self.stats.stalls += 1
            self.stats.last_blame = err.get("blame")
        response = error_response(
            request.id, err.get("code", "fault"), err.get("detail", "")
        )
        response["outcome"] = err.get("outcome")
        if err.get("blame"):
            response["blame"] = err["blame"]
        response["retries"] = retries
        if degraded:
            response.update(degraded=True, degraded_to=effective.backend)
        await send(response)

    async def _run_streaming(self, request: ImageRequest, send) -> None:
        """FFBP with merge levels streamed back as ``partial`` frames."""
        self.stats.streams += 1
        loop = asyncio.get_running_loop()
        frames: asyncio.Queue = asyncio.Queue()
        _DONE = object()

        def emit(frame: dict) -> None:
            loop.call_soon_threadsafe(frames.put_nowait, frame)

        def run() -> dict:
            try:
                return workers.form_image_streaming(
                    request.payload(), emit, stream_data=request.stream_data
                )
            finally:
                loop.call_soon_threadsafe(frames.put_nowait, _DONE)

        job = loop.run_in_executor(self._pool, run)
        t0 = time.perf_counter()
        deadline = self._deadline_of(request)

        async def forward() -> dict:
            while True:
                frame = await frames.get()
                if frame is _DONE:
                    break
                partial = dict(frame)
                partial.update(id=request.id, type="partial")
                await send(partial)
            return await job

        try:
            value = await asyncio.wait_for(forward(), timeout=deadline)
        except asyncio.TimeoutError:
            self._mark_error()
            self.stats.deadline_misses += 1
            self._window.record("deadline_miss")
            await send(
                error_response(
                    request.id, "deadline",
                    f"stream exceeded its "
                    f"{self._effective_deadline_ms(request)} ms deadline",
                )
            )
            return
        except Exception as exc:
            self._mark_error()
            await send(error_response(request.id, "internal", str(exc)))
            return
        self._mark_served()
        response = dict(value)
        response.update(
            id=request.id,
            type="result",
            cached=False,
            elapsed_ms=round((time.perf_counter() - t0) * 1e3, 3),
        )
        await send(response)

    # -- batching ---------------------------------------------------------

    async def _batch_loop(self) -> None:
        """Drain the queue, gather a window, dispatch groups."""
        loop = asyncio.get_running_loop()
        window = self.settings.batch_window_ms / 1e3
        while True:
            batch = [await self._queue.get()]
            deadline = loop.time() + window
            while True:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            for group in self._group(batch):
                self._spawn_group(group)

    def _spawn_group(self, group: list[_Pending]) -> None:
        task = asyncio.create_task(self._run_group(group))
        self._group_tasks.add(task)
        task.add_done_callback(self._group_tasks.discard)

    @staticmethod
    def _group(batch: list[_Pending]) -> list[list[_Pending]]:
        """Split a window's requests into per-backend-compatible groups.

        Image requests batch together; profile requests batch per
        backend spec (they share a machine build and, on the event
        backend, interleave poorly with host-numpy work).
        """
        groups: dict[tuple, list[_Pending]] = {}
        for pending in batch:
            req = pending.request
            if isinstance(req, ProfileRequest):
                key = ("profile", req.backend)
            else:
                key = ("image",)
            groups.setdefault(key, []).append(pending)
        return list(groups.values())

    async def _run_group(self, group: list[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        self.stats.batches += 1
        # Coalesce identical payloads: one compute, fanned out to all.
        unique: dict[str, list[_Pending]] = {}
        for pending in group:
            unique.setdefault(
                stable_digest(pending.request.payload()), []
            ).append(pending)
        self.stats.coalesced += len(group) - len(unique)
        order = list(unique.items())
        try:
            outcomes, rebuilds = await loop.run_in_executor(
                self._pool,
                _execute_group,
                [waiters[0].request.payload() for _, waiters in order],
                [digest for digest, _ in order],
                self._cache,
                self.settings.group_jobs,
                self.settings.group_retries,
            )
        except Exception as exc:
            for _, waiters in order:
                for pending in waiters:
                    if not pending.future.done():
                        pending.future.set_exception(exc)
            return
        if rebuilds:
            self.stats.pool_rebuilds += rebuilds
            for _ in range(rebuilds):
                self._window.record("pool_rebuild")
        for (_, waiters), outcome in zip(order, outcomes):
            value, cached, fkind, ftext = outcome
            for pending in waiters:
                if pending.future.done():
                    continue  # its client already timed out
                if ftext is not None:
                    pending.future.set_result(("fail", fkind, ftext))
                else:
                    pending.future.set_result(("ok", value, cached))

    # -- health ----------------------------------------------------------

    def _health(self, req_id) -> dict:
        from repro.perf import memo_stats

        s = self.stats
        return {
            "id": req_id,
            "type": "health",
            "status": "ok",
            "protocol": protocol.PROTOCOL,
            "code_version": code_version(),
            "uptime_s": round(time.monotonic() - self._started, 3),
            "connections": self._connections,
            "served": s.served,
            "errors": s.errors,
            "batches": s.batches,
            "coalesced": s.coalesced,
            "deadline_misses": s.deadline_misses,
            "streams": s.streams,
            "cache": None if self._cache is None else self._cache.stats(),
            "memo": {
                k: v
                for k, v in memo_stats().items()
                if isinstance(v, (int, float))
            },
            "faults": {
                "contained": s.contained_faults,
                "stalls": s.stalls,
                "last": s.last_fault,
                "last_blame": s.last_blame,
            },
            "window": self._window.snapshot(),
            "resilience": {
                "admission": self._admission.snapshot(),
                "overloaded": s.overloaded,
                "retries": s.retries,
                "degraded": s.degraded,
                "pool_rebuilds": s.pool_rebuilds,
                "breaker": self._breaker.snapshot(),
            },
        }


def _execute_group(
    payloads: list[dict],
    digests: list[str],
    cache: ResultCache | None,
    jobs: int = 1,
    retries: int = 0,
) -> tuple[list[tuple[Any, bool, str | None, str | None]], int]:
    """Run one compatible group through an :class:`ExperimentRunner`.

    Runs in a worker thread.  Returns ``(outcomes, pool_rebuilds)``
    where each outcome is ``(value, cached, failure_kind,
    failure_text)`` per payload, in order; a failure is the formatted
    :class:`~repro.exec.runner.TaskFailure` text plus its kind (the
    dispatch side retries ``broken-pool``), never an exception, so one
    bad request cannot poison its batch-mates.  With ``jobs >= 2`` the
    group fans out over a process pool; a worker death is contained by
    the runner (pool rebuilt, survivors replayed up to ``retries``
    times) and reported through ``pool_rebuilds``.
    """
    tasks = []
    for payload, digest in zip(payloads, digests):
        fn = (
            workers.profile_kernel
            if payload.get("kind") == "profile"
            else workers.form_image
        )
        tasks.append(
            TaskSpec(key=f"serve/{payload.get('kind')}/{digest}", fn=fn, args=(payload,))
        )
    runner = ExperimentRunner(jobs=jobs, retries=retries, cache=cache)
    results = runner.run(tasks, strict=False)
    out: list[tuple[Any, bool, str | None, str | None]] = []
    for res in results:
        if res.ok:
            out.append((res.value, res.cached, None, None))
        else:
            out.append((None, False, res.failure.kind, res.failure.format()))
    return out, runner.stats.pool_rebuilds
