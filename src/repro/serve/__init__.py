"""SAR-as-a-service: the async streaming image-formation tier.

The layer *above* the batch CLI (docs/architecture.md §14): a
long-running asyncio server that accepts image-formation and kernel-
profiling requests over a length-prefixed JSON protocol
(:mod:`repro.serve.protocol`), batches compatible requests, schedules
them onto the execution layer with the content-addressed
:class:`~repro.exec.cache.ResultCache` as a response cache, and
streams partial FFBP merge levels back as they complete
(:mod:`repro.serve.service`).  :mod:`repro.serve.load` is the paired
load generator / latency-percentile harness (``repro load``), emitting
``repro-load/1`` JSON rows for the bench trajectory.
"""

from repro.serve.load import LOAD_SCHEMA, format_load, run_load, run_load_sync
from repro.serve.resilience import (
    AdmissionController,
    CircuitBreaker,
    RetryPolicy,
    RollingWindow,
    degrade_spec,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL,
    ProtocolError,
    RequestError,
    decode_array,
    encode_array,
    encode_frame,
    parse_request,
    read_frame,
)
from repro.serve.service import ImageService, ServeSettings, ServeStats

__all__ = [
    "PROTOCOL",
    "LOAD_SCHEMA",
    "MAX_FRAME_BYTES",
    "ImageService",
    "ServeSettings",
    "ServeStats",
    "ProtocolError",
    "RequestError",
    "encode_frame",
    "read_frame",
    "encode_array",
    "decode_array",
    "parse_request",
    "run_load",
    "run_load_sync",
    "format_load",
    "AdmissionController",
    "CircuitBreaker",
    "RetryPolicy",
    "RollingWindow",
    "degrade_spec",
]
