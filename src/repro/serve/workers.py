"""Pure task functions behind the serving tier.

Module-level (picklable) so the service can schedule them through an
:class:`repro.exec.ExperimentRunner` at any ``jobs`` level, and pure
functions of their request payload so the runner's content-addressed
:class:`~repro.exec.cache.ResultCache` can serve repeats byte-
identically: the cache key digests the payload dict plus
:func:`~repro.exec.cache.code_version`, so any source edit invalidates
every cached response at once.

The heavy geometry inside (FFBP merge index maps, gather stencils)
flows through :mod:`repro.perf` memoisation, so concurrent tenants
asking for the *same grid* but different scenes/seeds still share one
build -- the serving counterpart of the sweep-time memo win.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.faults.report import CONTAINED_FAILURES, StallError
from repro.serve.protocol import encode_array


def _radar_config(pulses: int, ranges: int):
    from repro.sar.config import RadarConfig

    return RadarConfig.small(n_pulses=pulses, n_ranges=ranges)


def _simulate(payload: dict):
    from repro.eval.figures import default_scene
    from repro.sar.simulate import simulate_compressed

    cfg = _radar_config(payload["pulses"], payload["ranges"])
    scene = default_scene(cfg)
    # A non-zero noise floor by default, so distinct noise_seed values
    # yield distinct scenes (the load harness's cache-miss workload).
    data = simulate_compressed(
        cfg,
        scene,
        noise_sigma=float(payload.get("noise_sigma", 0.05)),
        seed=payload.get("noise_seed", 1234),
    )
    return cfg, data


def form_image(payload: dict) -> dict:
    """Form one image from a simulated collection; JSON-ready result.

    ``payload`` is :meth:`~repro.serve.protocol.ImageRequest.payload`
    -- exactly the cache-addressable fields.  The returned dict is what
    goes on the wire inside the ``result`` frame, so a cache hit is
    byte-identical to a cold compute all the way to the client.
    """
    import numpy as np

    from repro.sar.ffbp import FfbpOptions, ffbp
    from repro.sar.gbp import gbp_polar
    from repro.sar.rda import range_doppler_image

    t0 = time.perf_counter()
    cfg, data = _simulate(payload)
    algorithm = payload["algorithm"]
    if algorithm == "ffbp":
        opts = FfbpOptions(
            interpolation=payload.get("interpolation", "nearest"),
            phase_correction=bool(payload.get("phase_correction", False)),
        )
        shards = int(payload.get("shards", 1))
        if shards > 1:
            from repro.sar.shard import sharded_ffbp

            img = sharded_ffbp(data, cfg, shards, opts)
        else:
            img = ffbp(data, cfg, opts)
        out = img.data
    elif algorithm == "gbp":
        out = gbp_polar(np.asarray(data, np.complex128), cfg).data
    else:
        out = range_doppler_image(np.asarray(data, np.complex128), cfg).data
    return {
        "image": encode_array(out),
        "algorithm": algorithm,
        "compute_ms": round((time.perf_counter() - t0) * 1e3, 3),
    }


def form_image_streaming(
    payload: dict, emit: Callable[[dict], None], stream_data: bool = False
) -> dict:
    """FFBP with one ``partial`` emission per merge level.

    ``emit`` is called from the worker thread with a JSON-ready dict
    for every stage of the merge tree as it completes -- level index,
    stage shape and the stage digest (plus the stage bytes when
    ``stream_data`` is set).  Returns the same final payload as
    :func:`form_image`, so streaming never changes the result bytes.
    """
    import hashlib

    from repro.geometry.apertures import SubapertureTree
    from repro.sar.ffbp import FfbpOptions, ffbp_stages

    t0 = time.perf_counter()
    cfg, data = _simulate(payload)
    opts = FfbpOptions(
        interpolation=payload.get("interpolation", "nearest"),
        phase_correction=bool(payload.get("phase_correction", False)),
    )
    tree = SubapertureTree(cfg.n_pulses, cfg.spacing, cfg.merge_base)
    n_levels = tree.n_stages
    stage = None
    for level, stage in enumerate(ffbp_stages(data, cfg, opts, tree=tree)):
        frame: dict[str, Any] = {
            "level": level,
            "n_levels": n_levels,
            "subapertures": int(stage.shape[0]),
            "beams": int(stage.shape[1]),
            "sha256": hashlib.sha256(stage.tobytes()).hexdigest(),
        }
        if stream_data:
            frame["stage"] = encode_array(stage)
        emit(frame)
    return {
        "image": encode_array(stage[0]),
        "algorithm": "ffbp",
        "compute_ms": round((time.perf_counter() - t0) * 1e3, 3),
    }


def _maybe_chaos_kill(payload: dict) -> None:
    """Chaos hook: the first ``fail_times`` claimants of a marker die.

    Each kill claims one ``<marker>.<n>`` slot with ``O_CREAT|O_EXCL``
    (atomic even across concurrent worker processes) and then SIGKILLs
    itself -- the hardest worker death there is, indistinguishable from
    a segfault to the pool.  Once every slot is claimed the payload
    computes normally, so a retried/replayed request heals
    deterministically.  The service only routes marker-carrying
    requests here when booted with ``allow_chaos`` *and* a real
    process pool (``group_jobs >= 2``); otherwise the kill would take
    the server itself down.
    """
    marker = payload.get("fail_marker")
    if not marker:
        return
    import os
    import signal

    for n in range(int(payload.get("fail_times", 1))):
        try:
            fd = os.open(f"{marker}.{n}", os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        os.kill(os.getpid(), signal.SIGKILL)


def profile_kernel(payload: dict) -> dict:
    """Run a kernel timing model on a registry backend spec.

    Contained failures -- an injected fault, a watchdog
    :class:`~repro.faults.report.StallError` with its blame report, a
    deadlock -- come back as a *structured value* (an ``"error"`` key)
    rather than an exception, so the serving layer can answer with the
    diagnosis and count it in the health report instead of tearing the
    batch down.
    """
    from repro.machine.backends import get_machine

    _maybe_chaos_kill(payload)
    t0 = time.perf_counter()
    machine = get_machine(payload["backend"])
    try:
        if payload["kernel"] == "ffbp":
            from repro.kernels.ffbp_common import plan_ffbp
            from repro.kernels.ffbp_spmd import run_ffbp_spmd

            cfg = _radar_config(payload["pulses"], payload["ranges"])
            cores = min(int(payload.get("cores", 16)), machine.n_cores)
            res = run_ffbp_spmd(machine, plan_ffbp(cfg), cores)
        else:
            from repro.kernels.autofocus_mpmd import (
                run_autofocus_mpmd_resilient,
            )
            from repro.kernels.opcounts import AutofocusWorkload

            res, _moved = run_autofocus_mpmd_resilient(
                machine, AutofocusWorkload(), watchdog=payload.get("watchdog")
            )
    except CONTAINED_FAILURES as exc:
        error: dict[str, Any] = {
            "code": exc.describe()[0],
            "detail": str(exc).splitlines()[0],
            "outcome": list(map(str, exc.describe())),
        }
        if isinstance(exc, StallError):
            b = exc.blame
            error["blame"] = {
                "channel": b.channel,
                "role": b.role,
                "waiter_core": b.waiter_core,
                "peer_core": b.peer_core,
                "flag": b.flag,
                "waited_cycles": b.waited_cycles,
            }
        return {"error": error, "backend": payload["backend"]}
    return {
        "backend": payload["backend"],
        "kernel": payload["kernel"],
        "cycles": int(res.cycles),
        "energy_j": float(res.energy_joules),
        "average_power_w": float(res.average_power_w),
        "stalled": bool(res.stalled),
        "compute_ms": round((time.perf_counter() - t0) * 1e3, 3),
    }
