"""Resilience policies of the serving tier: admission, retry, breaker.

The serving tier of PR 7 was fair-weather: queues grew without bound
under overload, a contained fault went straight back to the client on
first occurrence, and a consistently-failing backend kept being asked.
This module is the policy layer that fixes all three, kept separate
from :mod:`repro.serve.service` (which stays glue) and built on the
same determinism discipline as the rest of the repo -- every decision
is a pure function of ``(settings, seed, request history)``, never of
wall clock or scheduling jitter, so a same-seed rerun of the chaos
gate makes identical admission/retry/degradation decisions:

- :class:`AdmissionController` -- a bounded in-flight budget.  A
  request over budget is *rejected immediately* with a structured
  ``overloaded`` error and a ``retry_after_ms`` hint instead of
  joining an unbounded queue (per-connection caps live in the
  connection loop, see :meth:`~repro.serve.service.ImageService`).
- :class:`RetryPolicy` -- deterministic exponential backoff with
  seeded jitter via :func:`~repro.exec.seeding.derive_seed`: the
  delay for ``(request key, attempt)`` is the same in every process
  and every rerun, so retry schedules are reproducible evidence, not
  flakes.
- :class:`CircuitBreaker` -- a rolling per-backend-spec outcome
  window.  Enough failures trip the breaker; while open, profile
  requests transparently degrade one rung down the
  :func:`degrade_spec` ladder -- bare ``event:*`` onto the
  byte-identical trace-compiled ``replay(event:*)`` tier,
  ``replay(event:*)`` and fault-wrapped specs onto the banded
  ``analytic:*`` model -- a degraded-but-bounded answer, flagged
  ``degraded: true``, beats a timeout (the always-on argument of the
  automotive SAR paper, PAPERS.md).  The window is
  **count-based**, not time-based, precisely so breaker decisions
  replay identically under the chaos gate.
- :class:`RollingWindow` -- last-N-seconds event rates for ``health``
  responses, so load harnesses read *rates*, not lifetime totals.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.exec.seeding import derive_seed

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "RetryPolicy",
    "RollingWindow",
    "degrade_spec",
]

DEFAULT_RESILIENCE_SEED = 20130821
"""Default jitter seed -- the same vintage as the verify gate's."""


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------

class AdmissionController:
    """Bounded in-flight budget with an immediate structured rejection.

    ``try_admit`` either admits (returns ``None``) or rejects with the
    ``retry_after_ms`` hint the ``overloaded`` error response should
    carry.  The hint scales linearly with how far over budget the
    server is, so a thundering herd spreads out instead of re-arriving
    in lockstep -- combined with each client's seeded jitter this is
    the deterministic cousin of randomized backoff.
    """

    def __init__(self, budget: int, retry_after_ms: float = 50.0) -> None:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if retry_after_ms <= 0:
            raise ValueError(
                f"retry_after_ms must be positive, got {retry_after_ms}"
            )
        self.budget = budget
        self.retry_after_ms = retry_after_ms
        self.inflight = 0
        self.admitted = 0
        self.rejected = 0

    def try_admit(self) -> float | None:
        """Admit (``None``) or reject (the retry-after hint in ms)."""
        if self.inflight >= self.budget:
            self.rejected += 1
            return self.retry_hint()
        self.inflight += 1
        self.admitted += 1
        return None

    def retry_hint(self) -> float:
        """The current pressure-scaled retry-after hint, in ms.

        The same linear-in-overload formula :meth:`try_admit` attaches
        to a budget rejection, but without counting one -- for
        rejection paths that never consult the budget (shutdown
        drain, per-connection caps): their hints should track actual
        server pressure too, not a static constant.
        """
        overload = 1 + max(0, self.inflight - self.budget) / self.budget
        return round(self.retry_after_ms * overload, 3)

    def release(self) -> None:
        if self.inflight <= 0:
            raise RuntimeError("release() without a matching admit")
        self.inflight -= 1

    def snapshot(self) -> dict:
        return {
            "inflight": self.inflight,
            "budget": self.budget,
            "admitted": self.admitted,
            "rejected": self.rejected,
        }


# ---------------------------------------------------------------------------
# Retry with deterministic backoff
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Seeded exponential backoff: reproducible, capped, jittered.

    ``backoff_ms(key, attempt)`` for ``attempt >= 1`` is
    ``base * 2**(attempt-1)`` (capped) scaled into ``[0.5, 1.0)`` by a
    jitter drawn from :func:`derive_seed(seed, "retry/<key>/<n>")` --
    a pure function of its arguments, so two runs of the same request
    mix sleep for exactly the same total and the chaos gate's
    decision records replay byte-identically.
    """

    max_retries: int = 1
    base_ms: float = 25.0
    cap_ms: float = 1000.0
    seed: int = DEFAULT_RESILIENCE_SEED

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_ms <= 0 or self.cap_ms < self.base_ms:
            raise ValueError(
                f"need 0 < base_ms <= cap_ms, got "
                f"base={self.base_ms}, cap={self.cap_ms}"
            )

    def backoff_ms(self, key: str, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based) of request ``key``."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = min(self.base_ms * 2 ** (attempt - 1), self.cap_ms)
        jitter = derive_seed(self.seed, f"retry/{key}/{attempt}") % 1024
        return round(raw * (0.5 + 0.5 * jitter / 1024), 3)


# ---------------------------------------------------------------------------
# Circuit breaker with ladder degradation (event -> replay -> analytic)
# ---------------------------------------------------------------------------

def degrade_spec(spec: str) -> str | None:
    """The next-cheaper substitute of an ``event``-engined backend spec.

    Two-step degradation ladder (each breaker trip descends one rung):

    - a bare ``event:*`` degrades onto ``replay(event:*)`` -- the
      trace-compiled tier, byte-identical to the cycle-accurate run
      (see :mod:`repro.replay`) but served from the compiled-schedule
      cache when the class has been seen before;
    - ``replay(event:*)`` degrades onto ``analytic:*`` -- the modeled
      engine, banded rather than exact, but immune to whatever made
      the event engine slow or wedged.

    ``faulty(<plan>):``-wrapped specs skip the replay rung: the replay
    machine refuses to cache fault-injected runs (the chaos gate
    depends on cold-run semantics), so a substitute that re-runs the
    event engine cold buys nothing.  Wrappers are peeled and kept --
    the injected environment is part of the request, only the engine
    degrades -- and the innermost ``event`` token swaps straight to
    ``analytic``.  Returns ``None`` when the spec has no rung left
    below it (already analytic, unknown token): the breaker then has
    no substitute to offer and stays advisory.
    """
    head = spec.strip()
    prefix = ""
    while head.startswith("faulty("):
        depth, i = 0, 0
        for i, ch in enumerate(head):
            depth += ch == "("
            depth -= ch == ")"
            if ch == ")" and depth == 0:
                break
        else:
            return None  # unbalanced parens: not ours to rewrite
        if not head[i + 1:i + 2] == ":":
            return None
        prefix += head[:i + 2]
        head = head[i + 2:]
    if head.startswith("replay(") and head.endswith(")"):
        head = head[len("replay("):-1].strip()
        # replay(event:*) -> analytic:* (the rung below replay).
        if head == "event":
            return prefix + "analytic"
        if head.startswith("event:"):
            return prefix + "analytic" + head[len("event"):]
        return None
    if head == "replay" or head.startswith("replay:"):
        # Bare-token spelling: replay:e16 == replay(event:e16).
        return prefix + "analytic" + head[len("replay"):]
    if head == "event" or head.startswith("event:"):
        if prefix:
            # Fault-wrapped: replay would bypass its cache anyway.
            return prefix + "analytic" + head[len("event"):]
        return f"replay({head})"
    return None


@dataclass
class _BreakerState:
    """Per-spec breaker bookkeeping."""

    window: deque = field(default_factory=deque)
    state: str = "closed"  # closed | open | half-open
    cooldown_left: int = 0


class CircuitBreaker:
    """Count-based rolling failure window per backend spec.

    State machine (all transitions counted, all deterministic in the
    outcome sequence):

    - **closed**: outcomes accumulate in a ``window``-deep deque; once
      ``failures`` of the last ``window`` outcomes are failures the
      breaker *trips* to open.
    - **open**: ``decide()`` answers ``"degrade"`` for the next
      ``cooldown`` requests (served on the :func:`degrade_spec`
      substitute, flagged), then offers one ``"probe"`` through to the
      real backend (half-open).
    - **half-open**: the probe's outcome closes the breaker (a
      *recovery*) or re-trips it; other requests keep degrading while
      the probe is outstanding.

    Specs without a substitute (nothing to degrade to) never degrade:
    ``decide()`` stays ``"pass"`` and the window is bookkeeping only.
    ``failures <= 0`` disables the breaker entirely.
    """

    def __init__(
        self, window: int = 8, failures: int = 4, cooldown: int = 4
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if failures > window:
            raise ValueError(
                f"failures ({failures}) cannot exceed window ({window})"
            )
        if cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {cooldown}")
        self.window = window
        self.failures = failures
        self.cooldown = cooldown
        self.trips = 0
        self.recoveries = 0
        self._specs: dict[str, _BreakerState] = {}

    @property
    def enabled(self) -> bool:
        return self.failures > 0

    def _state(self, spec: str) -> _BreakerState:
        st = self._specs.get(spec)
        if st is None:
            st = self._specs[spec] = _BreakerState(
                window=deque(maxlen=self.window)
            )
        return st

    def decide(self, spec: str) -> tuple[str, str | None]:
        """Route one request: ``(verdict, substitute_spec)``.

        Verdicts: ``"pass"`` (closed, or nothing to degrade to),
        ``"degrade"`` (open: serve on the substitute, flag the
        response), ``"probe"`` (half-open: one request through to the
        real backend; its :meth:`record` settles the state).
        """
        substitute = degrade_spec(spec)
        if not self.enabled or substitute is None:
            return "pass", None
        st = self._state(spec)
        if st.state == "open":
            if st.cooldown_left > 0:
                st.cooldown_left -= 1
                return "degrade", substitute
            st.state = "half-open"
            return "probe", None
        if st.state == "half-open":
            # A probe is already outstanding; keep degrading.
            return "degrade", substitute
        return "pass", None

    def record(self, spec: str, ok: bool) -> None:
        """Record the outcome of a ``pass``/``probe`` attempt."""
        if not self.enabled:
            return
        st = self._state(spec)
        if st.state == "half-open":
            if ok:
                st.state = "closed"
                st.window.clear()
                self.recoveries += 1
            else:
                st.state = "open"
                st.cooldown_left = self.cooldown
                self.trips += 1
            return
        st.window.append(ok)
        if (
            st.state == "closed"
            and len(st.window) >= self.failures
            and sum(1 for o in st.window if not o) >= self.failures
        ):
            st.state = "open"
            st.cooldown_left = self.cooldown
            st.window.clear()
            self.trips += 1

    def state_of(self, spec: str) -> str:
        st = self._specs.get(spec)
        return st.state if st is not None else "closed"

    def snapshot(self) -> dict:
        """Health-report block: counters plus per-spec state."""
        return {
            "trips": self.trips,
            "recoveries": self.recoveries,
            "window": self.window,
            "failures": self.failures,
            "cooldown": self.cooldown,
            "specs": {
                spec: {
                    "state": st.state,
                    "recent_failures": sum(1 for o in st.window if not o),
                    "cooldown_left": st.cooldown_left,
                }
                for spec, st in sorted(self._specs.items())
            },
        }


# ---------------------------------------------------------------------------
# Rolling event-rate window
# ---------------------------------------------------------------------------

class RollingWindow:
    """Last-``horizon_s``-seconds event counts and rates.

    The cumulative counters of :class:`~repro.serve.service.ServeStats`
    answer "how many, ever"; a load harness watching a long-running
    server (or an operator eyeballing ``health``) needs "how many,
    *lately*".  ``record(kind)`` timestamps one event; ``snapshot()``
    prunes everything older than the horizon and reports counts plus
    per-second rates.  ``clock`` is injectable for tests.
    """

    def __init__(self, horizon_s: float = 60.0, clock=time.monotonic) -> None:
        if horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {horizon_s}")
        self.horizon_s = horizon_s
        self._clock = clock
        self._events: deque = deque()  # (timestamp, kind)

    def record(self, kind: str) -> None:
        now = self._clock()
        self._events.append((now, kind))
        self._prune(now)

    def _prune(self, now: float) -> None:
        cutoff = now - self.horizon_s
        while self._events and self._events[0][0] < cutoff:
            self._events.popleft()

    def snapshot(self) -> dict:
        now = self._clock()
        self._prune(now)
        counts: dict[str, int] = {}
        for _, kind in self._events:
            counts[kind] = counts.get(kind, 0) + 1
        span = self.horizon_s
        if self._events:
            span = max(now - self._events[0][0], 1e-9)
        return {
            "horizon_s": self.horizon_s,
            "events": dict(sorted(counts.items())),
            "per_s": {
                kind: round(n / span, 3)
                for kind, n in sorted(counts.items())
            },
        }
