"""Load generator and latency harness for the serving tier.

``repro load`` drives N concurrent client connections against a
running ``repro serve``, each issuing M image-formation requests, and
reports the latency distribution -- p50/p99 being the numbers the
Ericsson Epiphany latency study (PAPERS.md) argues matter for
real-time SAR, not mean throughput.  The default request mix repeats
one identical request, which exercises the serving tier's
content-addressed response cache: the first request computes, every
repeat must come back ``cached`` and byte-identical (the SHA-256
digests of all responses are compared).

Output is a single JSON document (schema ``repro-load/1``) so load
runs join the committed bench trajectory as a serving dimension::

    {
      "schema": "repro-load/1",
      "clients": 4, "requests_per_client": 20, "total": 80,
      "errors": 0,
      "latency_ms": {"p50": 1.9, "p99": 58.2, "mean": ..., "max": ...},
      "wall_s": 0.61, "throughput_rps": 131.4,
      "cached_responses": 79, "byte_identical": true,
      "server": {...health snapshot...}
    }
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any

from repro.faults.report import CONTAINED_CODES
from repro.serve.protocol import encode_frame, read_frame

LOAD_SCHEMA = "repro-load/1"

STRUCTURED_ERROR_CODES = CONTAINED_CODES + ("deadline", "overloaded", "broken-pool")
"""Error codes that are *contractual* answers under adverse
conditions: a diagnosed fault, a missed deadline, or admission-control
backpressure.  Everything else (``internal``, protocol errors) is an
unstructured failure -- the thing resilience CI gates on being zero."""

__all__ = [
    "LOAD_SCHEMA",
    "STRUCTURED_ERROR_CODES",
    "run_load",
    "run_load_sync",
    "format_load",
    "percentile",
]


def percentile(samples: list[float], q: float) -> float:
    """Linear-interpolated percentile of ``samples`` (q in [0, 100])."""
    if not samples:
        raise ValueError("no samples")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * (q / 100.0)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


async def _request(reader, writer, obj: dict) -> tuple[dict, float]:
    """Send one request, await its terminal frame, return (frame, ms).

    ``partial`` frames (streaming merge levels) are consumed but do not
    terminate the wait; latency is measured to the ``result``/``error``
    frame.
    """
    t0 = time.perf_counter()
    writer.write(encode_frame(obj))
    await writer.drain()
    while True:
        frame = await read_frame(reader)
        if frame is None:
            raise ConnectionError("server closed the connection mid-request")
        if frame.get("type") in ("result", "error", "health", "ok"):
            return frame, (time.perf_counter() - t0) * 1e3


async def _client(
    host: str,
    port: int,
    client_id: int,
    requests: int,
    payload: dict,
    unique: bool,
) -> list[dict]:
    """One connection's worth of sequential requests."""
    reader, writer = await asyncio.open_connection(host, port)
    records: list[dict] = []
    try:
        for i in range(requests):
            obj = dict(payload)
            obj["id"] = f"c{client_id}/r{i}"
            if unique and obj.get("kind", "image") == "image":
                # Distinct scenes per request: a cache-miss workload.
                obj["noise_seed"] = 1_000_003 * client_id + i
            frame, ms = await _request(reader, writer, obj)
            records.append(
                {
                    "id": obj["id"],
                    "ms": ms,
                    "type": frame.get("type"),
                    "code": frame.get("code"),
                    "cached": bool(frame.get("cached", False)),
                    "degraded": bool(frame.get("degraded", False)),
                    "retries": int(frame.get("retries") or 0),
                    "sha256": (frame.get("image") or {}).get("sha256"),
                }
            )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return records


async def run_load(
    host: str,
    port: int,
    clients: int = 2,
    requests: int = 8,
    payload: dict | None = None,
    unique: bool = False,
    shutdown_after: bool = False,
) -> dict[str, Any]:
    """Drive the load and assemble the ``repro-load/1`` document."""
    if clients < 1 or requests < 1:
        raise ValueError("clients and requests must both be >= 1")
    base = {"kind": "image", "pulses": 64, "ranges": 65}
    if payload:
        base.update(payload)
    t0 = time.perf_counter()
    per_client = await asyncio.gather(
        *(
            _client(host, port, c, requests, base, unique)
            for c in range(clients)
        )
    )
    wall_s = time.perf_counter() - t0
    records = [r for client_records in per_client for r in client_records]
    latencies = [r["ms"] for r in records]
    errors = [r for r in records if r["type"] != "result"]
    unstructured = [
        r for r in errors if r["code"] not in STRUCTURED_ERROR_CODES
    ]
    shas = {r["sha256"] for r in records if r["sha256"]}

    # Health snapshot (and optional clean shutdown) on a fresh
    # connection, outside the timed window.
    reader, writer = await asyncio.open_connection(host, port)
    try:
        health, _ = await _request(
            reader, writer, {"id": "load/health", "kind": "health"}
        )
        if shutdown_after:
            await _request(
                reader, writer, {"id": "load/shutdown", "kind": "shutdown"}
            )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    return {
        "schema": LOAD_SCHEMA,
        "clients": clients,
        "requests_per_client": requests,
        "total": len(records),
        "errors": len(errors),
        "structured_errors": len(errors) - len(unstructured),
        "unstructured_errors": len(unstructured),
        "error_detail": [
            {"id": r["id"], "code": r["code"]} for r in errors[:10]
        ],
        "degraded_responses": sum(1 for r in records if r["degraded"]),
        "retries": sum(r["retries"] for r in records),
        "latency_ms": {
            "p50": round(percentile(latencies, 50), 3),
            "p99": round(percentile(latencies, 99), 3),
            "mean": round(sum(latencies) / len(latencies), 3),
            "max": round(max(latencies), 3),
        },
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(len(records) / wall_s, 2) if wall_s else None,
        "cached_responses": sum(1 for r in records if r["cached"]),
        "byte_identical": (len(shas) == 1) if shas and not unique else None,
        "payload": {k: v for k, v in base.items() if k != "id"},
        "server": {
            k: health.get(k)
            for k in (
                "served",
                "errors",
                "batches",
                "coalesced",
                "deadline_misses",
                "cache",
                "faults",
                "window",
                "resilience",
            )
        },
    }


def run_load_sync(*args, **kwargs) -> dict[str, Any]:
    """Synchronous wrapper around :func:`run_load` (CLI entry)."""
    return asyncio.run(run_load(*args, **kwargs))


def format_load(doc: dict[str, Any]) -> str:
    """Human-readable one-screen summary (stderr)."""
    lat = doc["latency_ms"]
    lines = [
        f"load: {doc['clients']} clients x {doc['requests_per_client']} "
        f"requests = {doc['total']} total, {doc['errors']} errors",
        f"load: p50 {lat['p50']:.2f} ms   p99 {lat['p99']:.2f} ms   "
        f"mean {lat['mean']:.2f} ms   max {lat['max']:.2f} ms",
        f"load: {doc['wall_s']:.3f}s wall, {doc['throughput_rps']} req/s, "
        f"{doc['cached_responses']} cached responses",
    ]
    if doc.get("byte_identical") is not None:
        lines.append(
            "load: responses byte-identical: "
            + ("yes" if doc["byte_identical"] else "NO")
        )
    if doc.get("errors"):
        lines.append(
            f"load: {doc.get('structured_errors', 0)} structured / "
            f"{doc.get('unstructured_errors', 0)} unstructured errors"
        )
    if doc.get("retries") or doc.get("degraded_responses"):
        lines.append(
            f"load: {doc.get('retries', 0)} server retries, "
            f"{doc.get('degraded_responses', 0)} degraded responses"
        )
    cache = (doc.get("server") or {}).get("cache")
    if cache:
        lines.append(
            f"load: server cache {cache['hits']} hit / "
            f"{cache['misses']} miss / {cache['stores']} stored"
        )
    return "\n".join(lines)


def dump_load(doc: dict[str, Any]) -> str:
    return json.dumps(doc, indent=2, sort_keys=True)
