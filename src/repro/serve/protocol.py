"""Wire protocol of the serving tier: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON encoding one object.  The framing is
symmetric (requests and responses use the same envelope) and boring on
purpose: any language with sockets and a JSON parser is a client.

Containment mirrors the fault subsystem's philosophy (see
``docs/architecture.md`` §11): a malformed request must never take the
connection down, let alone the server.  Every recoverable input
problem -- unparseable JSON, an oversized payload, an unknown request
kind, a bad field, an unknown backend spec -- maps to a structured
``{"type": "error", "code": ..., "detail": ...}`` response and the
connection stays usable for the next frame.  Only a truncated frame
(the peer died mid-send) closes the connection.

Request vocabulary (``kind`` field):

- ``image``    simulate a scene and form an image (ffbp/gbp/rda); with
  ``"stream": true`` the FFBP merge levels stream back as ``partial``
  frames while they complete,
- ``profile``  run a kernel timing model on a registry backend spec
  and return cycles/energy (watchdog-guarded; a stall comes back as a
  structured error with its blame report),
- ``health``   server status: uptime, counters, response-cache and
  geometry-memo stats, contained-fault history,
- ``shutdown`` ask the server to drain and exit cleanly.

Image payloads travel as base64 of the raw array bytes plus dtype,
shape and a SHA-256 digest, so clients can assert byte-identity
(the response cache's contract) without trusting float round-trips.

Resilience extensions (additive to ``repro-serve/1``; old clients see
only keys they ignore):

- error code ``overloaded`` -- admission control rejected the request
  (in-flight budget or per-connection cap exhausted, or the server is
  draining for shutdown); the response carries a ``retry_after_ms``
  hint,
- ``retries`` on batched terminal responses -- how many seeded-backoff
  retries the server spent before this answer,
- ``degraded: true`` plus ``degraded_to`` -- the circuit breaker
  tripped on the requested backend and the answer was computed on the
  named substitute spec one rung down the degradation ladder
  (``replay(event:*)`` for bare event specs, ``analytic:*`` below),
- profile requests accept ``fail_marker``/``fail_times`` (a filesystem
  token that makes the first N executions kill their worker process) --
  the chaos gate's hook for exercising pool self-healing end-to-end;
  the service rejects it unless booted with ``allow_chaos``.
"""

from __future__ import annotations

import base64
import hashlib
import json
import struct
from dataclasses import dataclass, field
from typing import Any

import numpy as np

PROTOCOL = "repro-serve/1"
MAX_FRAME_BYTES = 1 << 20
"""Default per-frame byte ceiling (requests and responses)."""

_LEN = struct.Struct(">I")

REQUEST_KINDS = ("image", "profile", "health", "shutdown")
ALGORITHMS = ("ffbp", "gbp", "rda")
PROFILE_KERNELS = ("ffbp", "autofocus")
MAX_PULSES = 4096
MAX_RANGES = 8192


class ProtocolError(Exception):
    """A framing-level problem.

    ``recoverable`` means the stream is still frame-aligned (the bad
    bytes were fully consumed) and the connection may continue after an
    error response; a non-recoverable error means the peer vanished
    mid-frame and the connection must close.
    """

    def __init__(self, code: str, detail: str, recoverable: bool = True) -> None:
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail
        self.recoverable = recoverable


class RequestError(ValueError):
    """A well-framed request with bad content (always recoverable)."""

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def encode_frame(obj: Any, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialise one JSON-compatible object into a length-prefixed frame."""
    body = json.dumps(obj, separators=(",", ":"), sort_keys=True).encode()
    if len(body) > max_bytes:
        raise ProtocolError(
            "oversized",
            f"frame of {len(body)} bytes exceeds the {max_bytes}-byte limit",
        )
    return _LEN.pack(len(body)) + body


def decode_frames(buf: bytes) -> list[dict]:
    """Decode every complete frame in ``buf`` (testing helper)."""
    out: list[dict] = []
    view = memoryview(buf)
    while len(view) >= _LEN.size:
        (n,) = _LEN.unpack_from(view)
        if len(view) < _LEN.size + n:
            break
        out.append(json.loads(bytes(view[_LEN.size:_LEN.size + n])))
        view = view[_LEN.size + n:]
    return out


async def read_frame(reader, max_bytes: int = MAX_FRAME_BYTES) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`ProtocolError`:

    - ``oversized`` (recoverable): the declared length exceeds
      ``max_bytes``; the offending body is read *and discarded* so the
      stream stays frame-aligned,
    - ``bad-json`` (recoverable): the body is not a JSON object,
    - ``truncated`` (non-recoverable): EOF arrived mid-frame.
    """
    import asyncio

    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError(
            "truncated", "connection closed mid length prefix",
            recoverable=False,
        ) from exc
    (length,) = _LEN.unpack(header)
    if length > max_bytes:
        # Drain the oversized body so the next frame starts aligned.
        remaining = length
        try:
            while remaining:
                chunk = await reader.read(min(remaining, 1 << 16))
                if not chunk:
                    raise ProtocolError(
                        "truncated",
                        "connection closed inside an oversized frame",
                        recoverable=False,
                    )
                remaining -= len(chunk)
        except ProtocolError:
            raise
        raise ProtocolError(
            "oversized",
            f"frame of {length} bytes exceeds the {max_bytes}-byte limit",
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            "truncated", "connection closed mid frame", recoverable=False
        ) from exc
    try:
        obj = json.loads(body)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("bad-json", f"unparseable frame body: {exc}")
    if not isinstance(obj, dict):
        raise ProtocolError(
            "bad-json", f"frame body must be a JSON object, got {type(obj).__name__}"
        )
    return obj


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------

def _require_int(obj: dict, name: str, default: int, lo: int, hi: int) -> int:
    value = obj.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError("bad-request", f"{name!r} must be an integer")
    if not lo <= value <= hi:
        raise RequestError(
            "bad-request", f"{name!r} must be in [{lo}, {hi}], got {value}"
        )
    return value


def _require_choice(obj: dict, name: str, default: str, choices: tuple) -> str:
    value = obj.get(name, default)
    if value not in choices:
        raise RequestError(
            "bad-request", f"{name!r} must be one of {choices}, got {value!r}"
        )
    return value


def _noise_sigma(obj: dict) -> float:
    value = obj.get("noise_sigma", 0.05)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError("bad-request", "'noise_sigma' must be a number")
    if not 0 <= value <= 10:
        raise RequestError(
            "bad-request", f"'noise_sigma' must be in [0, 10], got {value}"
        )
    return float(value)


def _deadline_ms(obj: dict) -> float | None:
    value = obj.get("deadline_ms")
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError("bad-request", "'deadline_ms' must be a number")
    if value <= 0:
        raise RequestError(
            "bad-request", f"'deadline_ms' must be positive, got {value}"
        )
    return float(value)


@dataclass(frozen=True)
class ImageRequest:
    """Simulate-and-form-an-image work order (the serving hot path)."""

    id: Any
    pulses: int = 64
    ranges: int = 65
    algorithm: str = "ffbp"
    interpolation: str = "nearest"
    phase_correction: bool = False
    shards: int = 1
    noise_seed: int = 1234
    noise_sigma: float = 0.05
    stream: bool = False
    stream_data: bool = False
    deadline_ms: float | None = None
    kind: str = field(default="image", init=False)

    def payload(self) -> dict:
        """The canonical, cache-addressable content of this request.

        Everything that determines the *result bytes* -- and nothing
        that does not (id, deadline, streaming preferences) -- so two
        tenants asking for the same image share one cache entry.
        """
        return {
            "kind": "image",
            "pulses": self.pulses,
            "ranges": self.ranges,
            "algorithm": self.algorithm,
            "interpolation": self.interpolation,
            "phase_correction": self.phase_correction,
            "shards": self.shards,
            "noise_seed": self.noise_seed,
            "noise_sigma": self.noise_sigma,
        }


@dataclass(frozen=True)
class ProfileRequest:
    """Run a kernel timing model on a backend spec."""

    id: Any
    backend: str = "analytic:e16"
    kernel: str = "ffbp"
    pulses: int = 64
    ranges: int = 65
    cores: int = 16
    watchdog: int | None = None
    deadline_ms: float | None = None
    fail_marker: str | None = None
    """Chaos hook: filesystem token whose first ``fail_times``
    claimants SIGKILL their worker process before computing (see
    :func:`repro.serve.workers.profile_kernel`).  Part of the payload
    when set -- a chaos request must never share a cache entry with
    the clean request it imitates."""
    fail_times: int = 1
    kind: str = field(default="profile", init=False)

    def payload(self) -> dict:
        payload = {
            "kind": "profile",
            "backend": self.backend,
            "kernel": self.kernel,
            "pulses": self.pulses,
            "ranges": self.ranges,
            "cores": self.cores,
            "watchdog": self.watchdog,
        }
        if self.fail_marker is not None:
            payload["fail_marker"] = self.fail_marker
            payload["fail_times"] = self.fail_times
        return payload


@dataclass(frozen=True)
class HealthRequest:
    id: Any
    kind: str = field(default="health", init=False)


@dataclass(frozen=True)
class ShutdownRequest:
    id: Any
    kind: str = field(default="shutdown", init=False)


Request = ImageRequest | ProfileRequest | HealthRequest | ShutdownRequest


def parse_request(obj: dict) -> Request:
    """Validate one decoded frame into a typed request.

    Raises :class:`RequestError` (code ``bad-request`` or
    ``unknown-backend``) on anything off-contract; the caller answers
    with a structured error and keeps the connection.
    """
    req_id = obj.get("id")
    kind = obj.get("kind")
    if kind not in REQUEST_KINDS:
        raise RequestError(
            "bad-request",
            f"'kind' must be one of {REQUEST_KINDS}, got {kind!r}",
        )
    if kind == "health":
        return HealthRequest(id=req_id)
    if kind == "shutdown":
        return ShutdownRequest(id=req_id)
    if kind == "image":
        pulses = _require_int(obj, "pulses", 64, 2, MAX_PULSES)
        algorithm = _require_choice(obj, "algorithm", "ffbp", ALGORITHMS)
        shards = _require_int(obj, "shards", 1, 1, 64)
        if shards > 1 and algorithm != "ffbp":
            raise RequestError(
                "bad-request",
                f"'shards' applies to the ffbp algorithm, not {algorithm!r}",
            )
        return ImageRequest(
            id=req_id,
            pulses=pulses,
            ranges=_require_int(obj, "ranges", 65, 3, MAX_RANGES),
            algorithm=algorithm,
            interpolation=_require_choice(
                obj, "interpolation", "nearest",
                ("nearest", "bilinear", "cubic_range"),
            ),
            phase_correction=bool(obj.get("phase_correction", False)),
            shards=shards,
            noise_seed=_require_int(obj, "noise_seed", 1234, 0, 2**63 - 1),
            noise_sigma=_noise_sigma(obj),
            stream=bool(obj.get("stream", False)),
            stream_data=bool(obj.get("stream_data", False)),
            deadline_ms=_deadline_ms(obj),
        )
    # profile
    backend = obj.get("backend", "analytic:e16")
    if not isinstance(backend, str):
        raise RequestError("bad-request", "'backend' must be a string")
    from repro.machine.backends import resolve_backend

    try:
        resolve_backend(backend)
    except ValueError as exc:
        raise RequestError("unknown-backend", str(exc)) from exc
    watchdog = obj.get("watchdog")
    if watchdog is not None:
        watchdog = _require_int(obj, "watchdog", 0, 1, 2**31)
    fail_marker = obj.get("fail_marker")
    fail_times = 1
    if fail_marker is not None:
        if not isinstance(fail_marker, str) or not fail_marker:
            raise RequestError(
                "bad-request", "'fail_marker' must be a non-empty string"
            )
        fail_times = _require_int(obj, "fail_times", 1, 1, 16)
    return ProfileRequest(
        id=req_id,
        backend=backend,
        kernel=_require_choice(obj, "kernel", "ffbp", PROFILE_KERNELS),
        pulses=_require_int(obj, "pulses", 64, 2, MAX_PULSES),
        ranges=_require_int(obj, "ranges", 65, 3, MAX_RANGES),
        cores=_require_int(obj, "cores", 16, 1, 4096),
        watchdog=watchdog,
        deadline_ms=_deadline_ms(obj),
        fail_marker=fail_marker,
        fail_times=fail_times,
    )


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------

def encode_array(arr: np.ndarray) -> dict:
    """Base64 payload of an array's exact bytes, with a digest."""
    arr = np.ascontiguousarray(arr)
    raw = arr.tobytes()
    return {
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
        "data_b64": base64.b64encode(raw).decode("ascii"),
        "sha256": hashlib.sha256(raw).hexdigest(),
    }


def decode_array(payload: dict) -> np.ndarray:
    """Inverse of :func:`encode_array`; verifies the digest."""
    raw = base64.b64decode(payload["data_b64"])
    digest = hashlib.sha256(raw).hexdigest()
    if digest != payload["sha256"]:
        raise ValueError(
            f"image digest mismatch: {digest} != {payload['sha256']}"
        )
    return np.frombuffer(raw, dtype=np.dtype(payload["dtype"])).reshape(
        payload["shape"]
    )


def error_response(req_id: Any, code: str, detail: str) -> dict:
    return {"id": req_id, "type": "error", "code": code, "detail": detail}
