"""`ExperimentRunner`: deterministic fan-out of independent tasks.

The design-space workloads of this repo -- Table-I rows, core/clock/
prefetch sweeps, the verify gate's oracle x backend matrix, fuzz
drivers -- are embarrassingly parallel: every task is an independent
pure function of ``(backend spec, workload, seed)``.  This module runs
such task sets over a :class:`concurrent.futures.ProcessPoolExecutor`
with three guarantees the bare executor does not give:

**Determinism.**  Results are returned in task order and every task's
randomness comes from :func:`~repro.exec.seeding.derive_seed` applied
to its stable key, so the output is byte-identical at any ``jobs``
level -- including ``jobs=1``, which runs inline in-process (no pool,
no pickling) and therefore preserves exact serial behaviour.

**Caching.**  With a :class:`~repro.exec.cache.ResultCache` attached,
completed task values are memoised on disk under a content address of
(task key, payload, seed, code version); hits skip execution entirely
and are counted for reporting.

**Failure containment.**  A worker exception is captured *in the
child* with its traceback and surfaced as a structured
:class:`TaskFailure` (kind ``"error"``); a task overrunning
``timeout`` seconds fails with kind ``"timeout"``; a worker dying
outright (segfault, ``os._exit``) fails with kind ``"broken-pool"``
instead of leaking :class:`~concurrent.futures.process.
BrokenProcessPool` -- and the pool is rebuilt so remaining tasks still
run.  Each failing task is retried up to ``retries`` times on a fresh
attempt before its failure is recorded.

Task functions must be picklable (module-level) for ``jobs > 1``; on
POSIX the default fork start method also carries dynamically
registered backends into the workers.  Timeouts are only enforced when
``jobs > 1`` (a hung task cannot be preempted in-process).
"""

from __future__ import annotations

import traceback as _traceback
from concurrent.futures import (
    CancelledError,
    ProcessPoolExecutor,
    TimeoutError as FuturesTimeoutError,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.exec.cache import ResultCache, default_cache
from repro.exec.seeding import derive_seed

__all__ = [
    "TaskSpec",
    "TaskResult",
    "TaskFailure",
    "ExecStats",
    "ExperimentRunner",
]


class TaskFailure(RuntimeError):
    """One task's structured failure record.

    Attributes
    ----------
    key:
        The failing task's key.
    kind:
        ``"error"`` (the task function raised), ``"timeout"`` (exceeded
        the runner's per-task budget) or ``"broken-pool"`` (the worker
        process died without reporting back).
    message:
        One-line summary (exception type + message, or the pool/timeout
        diagnosis).
    child_traceback:
        The full traceback formatted *in the worker*, empty when the
        child could not report (timeout/broken pool).
    attempts:
        Attempts consumed, including retries.
    history:
        One line per *consumed attempt* in order
        (``"attempt <n>: <kind>: <message>"``), so a task that failed
        differently on each retry -- timeout, then a broken pool, then
        an exception -- keeps the full story, not just the last word.
        The final entry always describes this failure.
    """

    def __init__(
        self,
        key: str,
        kind: str,
        message: str,
        child_traceback: str = "",
        attempts: int = 1,
        history: Sequence[str] = (),
    ) -> None:
        super().__init__(f"task {key!r} failed ({kind}): {message}")
        self.key = key
        self.kind = kind
        self.message = message
        self.child_traceback = child_traceback
        self.attempts = attempts
        self.history = tuple(history) or (
            f"attempt {attempts}: {kind}: {message}",
        )

    def format(self) -> str:
        """Human-readable report: attempt history + child traceback."""
        lines = [str(self), f"  attempts: {self.attempts}"]
        if len(self.history) > 1:
            lines.append("  attempt history:")
            lines.extend("    " + entry for entry in self.history)
        if self.child_traceback:
            lines.append("  child traceback:")
            lines.extend(
                "    " + ln for ln in self.child_traceback.rstrip().splitlines()
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class TaskSpec:
    """One independent unit of work.

    ``key`` must be unique within a run: it orders results, derives the
    task seed and addresses the cache.  ``fn(*args, **kwargs)`` must be
    picklable for parallel execution.  If ``seed_arg`` is set and the
    runner has a ``root_seed``, the derived per-task seed is injected
    under that keyword.  ``cacheable=False`` opts a task out of the
    result cache (e.g. tasks reading mutable files).
    """

    key: str
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    seed_arg: str | None = None
    cacheable: bool = True


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one task (success, cache hit, or failure)."""

    key: str
    value: Any = None
    seed: int | None = None
    cached: bool = False
    attempts: int = 0
    seconds: float = 0.0
    failure: TaskFailure | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class ExecStats:
    """Aggregate accounting for one :meth:`ExperimentRunner.run`."""

    jobs: int = 1
    tasks: int = 0
    completed: int = 0
    failed: int = 0
    retried: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    pool_rebuilds: int = 0
    """Worker pools that died mid-run and were replaced; surviving
    tasks were replayed on the fresh pool (serving self-healing reads
    this to report pool churn in ``health``)."""
    wall_seconds: float = 0.0

    def format(self) -> str:
        cache = (
            f"cache {self.cache_hits} hit / {self.cache_misses} miss"
            if (self.cache_hits or self.cache_misses)
            else "cache off"
        )
        return (
            f"jobs={self.jobs}, {self.tasks} tasks "
            f"({self.completed} ok, {self.failed} failed, "
            f"{self.retried} retried), {cache}, "
            f"{self.wall_seconds:.2f}s wall"
        )


def _invoke(fn: Callable[..., Any], args: tuple, kwargs: dict) -> tuple:
    """Run one task attempt, capturing failures *with traceback*.

    Runs in the worker (or inline for serial runs).  Returns
    ``("ok", value, seconds)`` or ``("err", (type, message, tb), seconds)``
    -- always picklable, so a task exception can never surface as an
    opaque pool crash.
    """
    t0 = perf_counter()
    try:
        value = fn(*args, **kwargs)
        return ("ok", value, perf_counter() - t0)
    except Exception as exc:  # noqa: BLE001 -- re-raised structured
        detail = (type(exc).__name__, str(exc), _traceback.format_exc())
        return ("err", detail, perf_counter() - t0)


@dataclass
class _Prepared:
    """A task with its derived seed, final kwargs and cache address."""

    task: TaskSpec
    kwargs: dict
    seed: int | None
    cache_key: str | None
    attempts: int = 0
    last_failure: TaskFailure | None = None
    history: list[str] = field(default_factory=list)

    def fail(
        self, kind: str, message: str, child_traceback: str = ""
    ) -> TaskFailure:
        """Record one failed attempt and build its structured failure.

        Appends the attempt to :attr:`history` so retries accumulate a
        per-attempt log; the returned :class:`TaskFailure` carries the
        history collected so far.
        """
        self.history.append(f"attempt {self.attempts}: {kind}: {message}")
        return TaskFailure(
            self.task.key,
            kind,
            message,
            child_traceback=child_traceback,
            attempts=self.attempts,
            history=tuple(self.history),
        )


class ExperimentRunner:
    """Deterministic parallel executor for independent experiment tasks.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (the default) runs inline and
        preserves serial behaviour exactly.
    root_seed:
        Root of the per-task seed derivation; tasks with a
        ``seed_arg`` receive ``derive_seed(root_seed, task.key)``.
    timeout:
        Per-task wall-clock budget in seconds (parallel runs only).
    retries:
        Extra attempts per failing task.
    cache:
        A :class:`~repro.exec.cache.ResultCache`, ``None`` to disable,
        or the default sentinel which enables caching iff
        ``REPRO_CACHE_DIR`` is set (see
        :func:`~repro.exec.cache.default_cache`).
    """

    _ENV = object()  # sentinel: resolve cache from the environment

    def __init__(
        self,
        jobs: int = 1,
        root_seed: int | None = None,
        timeout: float | None = None,
        retries: int = 0,
        cache: ResultCache | None | object = _ENV,
    ) -> None:
        if int(jobs) < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.jobs = int(jobs)
        self.root_seed = root_seed
        self.timeout = timeout
        self.retries = retries
        self.cache = default_cache() if cache is ExperimentRunner._ENV else cache
        self.stats = ExecStats(jobs=self.jobs)

    # -- public API ------------------------------------------------------

    def run(
        self, tasks: Sequence[TaskSpec], strict: bool = True
    ) -> list[TaskResult]:
        """Execute ``tasks``; results come back in task order.

        With ``strict=True`` (default) the first :class:`TaskFailure`
        is raised once all tasks have been driven to completion or
        final failure; ``strict=False`` returns failures embedded in
        their :class:`TaskResult`.
        """
        t0 = perf_counter()
        stats = ExecStats(jobs=self.jobs, tasks=len(tasks))
        seen: set[str] = set()
        for task in tasks:
            if task.key in seen:
                raise ValueError(f"duplicate task key {task.key!r}")
            seen.add(task.key)

        results: dict[str, TaskResult] = {}
        pending: list[_Prepared] = []
        for task in tasks:
            prepared = self._prepare(task)
            if prepared.cache_key is not None:
                hit, value = self.cache.get(prepared.cache_key)
                if hit:
                    stats.cache_hits += 1
                    results[task.key] = TaskResult(
                        key=task.key,
                        value=value,
                        seed=prepared.seed,
                        cached=True,
                    )
                    continue
                stats.cache_misses += 1
            pending.append(prepared)

        if self.jobs == 1:
            self._run_serial(pending, results, stats)
        else:
            self._run_parallel(pending, results, stats)

        stats.completed = sum(1 for r in results.values() if r.ok)
        stats.failed = sum(1 for r in results.values() if not r.ok)
        stats.wall_seconds = perf_counter() - t0
        self.stats = stats

        ordered = [results[t.key] for t in tasks]
        if strict:
            for res in ordered:
                if res.failure is not None:
                    raise res.failure
        return ordered

    def map(
        self,
        fn: Callable[..., Any],
        payloads: Iterable[Any],
        name: str | None = None,
        seed_arg: str | None = None,
    ) -> list[Any]:
        """Convenience: apply ``fn`` to payload tuples, return values.

        Each payload is a tuple of positional arguments (bare values
        are wrapped).  Keys are ``<name>/<index>``.
        """
        prefix = name or getattr(fn, "__qualname__", "task")
        tasks = [
            TaskSpec(
                key=f"{prefix}/{i}",
                fn=fn,
                args=p if isinstance(p, tuple) else (p,),
                seed_arg=seed_arg,
            )
            for i, p in enumerate(payloads)
        ]
        return [r.value for r in self.run(tasks, strict=True)]

    # -- internals -------------------------------------------------------

    def _prepare(self, task: TaskSpec) -> _Prepared:
        kwargs = dict(task.kwargs)
        seed = None
        if task.seed_arg is not None and self.root_seed is not None:
            seed = derive_seed(self.root_seed, task.key)
            kwargs[task.seed_arg] = seed
        cache_key = None
        if self.cache is not None and task.cacheable:
            cache_key = self.cache.entry_key(
                task.key, payload=(task.args, kwargs), seed=seed
            )
        return _Prepared(task=task, kwargs=kwargs, seed=seed, cache_key=cache_key)

    def _record_success(
        self,
        prepared: _Prepared,
        value: Any,
        seconds: float,
        results: dict[str, TaskResult],
    ) -> None:
        if prepared.cache_key is not None:
            self.cache.put(prepared.cache_key, value)
        results[prepared.task.key] = TaskResult(
            key=prepared.task.key,
            value=value,
            seed=prepared.seed,
            attempts=prepared.attempts,
            seconds=seconds,
        )

    def _record_final_failure(
        self, prepared: _Prepared, results: dict[str, TaskResult]
    ) -> None:
        results[prepared.task.key] = TaskResult(
            key=prepared.task.key,
            seed=prepared.seed,
            attempts=prepared.attempts,
            failure=prepared.last_failure,
        )

    def _run_serial(
        self,
        pending: list[_Prepared],
        results: dict[str, TaskResult],
        stats: ExecStats,
    ) -> None:
        for prepared in pending:
            while True:
                prepared.attempts += 1
                status, payload, seconds = _invoke(
                    prepared.task.fn, prepared.task.args, prepared.kwargs
                )
                if status == "ok":
                    self._record_success(prepared, payload, seconds, results)
                    break
                etype, msg, tb = payload
                prepared.last_failure = prepared.fail(
                    "error", f"{etype}: {msg}", child_traceback=tb
                )
                if prepared.attempts > self.retries:
                    self._record_final_failure(prepared, results)
                    break
                stats.retried += 1

    def _run_parallel(
        self,
        pending: list[_Prepared],
        results: dict[str, TaskResult],
        stats: ExecStats,
    ) -> None:
        remaining = list(pending)
        while remaining:
            survivors: list[_Prepared] = []
            pool = ProcessPoolExecutor(
                max_workers=min(self.jobs, len(remaining))
            )
            futures = {
                p.task.key: pool.submit(
                    _invoke, p.task.fn, p.task.args, p.kwargs
                )
                for p in remaining
            }
            broken = False
            for prepared in remaining:
                prepared.attempts += 1
                failure: TaskFailure | None = None
                fut = futures[prepared.task.key]
                if broken and not fut.done():
                    failure = prepared.fail(
                        "broken-pool",
                        "worker pool died before this task completed",
                    )
                else:
                    try:
                        status, payload, seconds = fut.result(
                            timeout=self.timeout
                        )
                    except FuturesTimeoutError:
                        fut.cancel()
                        failure = prepared.fail(
                            "timeout",
                            f"exceeded the {self.timeout}s per-task budget",
                        )
                    except (BrokenProcessPool, CancelledError) as exc:
                        broken = True
                        failure = prepared.fail(
                            "broken-pool",
                            str(exc)
                            or "worker process died without reporting back",
                        )
                    except Exception as exc:  # e.g. unpicklable result
                        failure = prepared.fail(
                            "error", f"{type(exc).__name__}: {exc}"
                        )
                    else:
                        if status == "ok":
                            self._record_success(
                                prepared, payload, seconds, results
                            )
                            continue
                        etype, msg, tb = payload
                        failure = prepared.fail(
                            "error", f"{etype}: {msg}", child_traceback=tb
                        )
                prepared.last_failure = failure
                if prepared.attempts > self.retries:
                    self._record_final_failure(prepared, results)
                else:
                    stats.retried += 1
                    survivors.append(prepared)
            # Never block on hung/dead workers: cancel what we can and
            # let finished processes be reaped in the background.
            pool.shutdown(wait=False, cancel_futures=True)
            if broken:
                stats.pool_rebuilds += 1
            remaining = survivors
