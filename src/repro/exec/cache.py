"""Content-addressed on-disk result cache for experiment tasks.

Sweeps and verification runs re-execute the same deterministic
simulations over and over (CI re-runs, report regeneration, design
iterations that only touch one axis of a sweep).  Since every task in
the execution layer is a pure function of its arguments, its seed and
the simulator source, the result can be cached under a key that names
exactly those inputs:

    sha256(task_key \\x1f payload_digest \\x1f seed \\x1f code_version)

- ``payload_digest`` canonically hashes the task's arguments
  (:func:`stable_digest` walks dataclasses, dicts, numpy arrays ...),
- ``code_version`` hashes every source file of the ``repro`` package,
  so *any* code change invalidates the whole cache -- conservative,
  but it can never serve a stale result after a model retune.

The store lives under ``$REPRO_CACHE_DIR`` if set, else
``~/.cache/repro`` (:func:`cache_dir`); it is **opt-in**: the runner
only caches when handed a :class:`ResultCache` (the CLI consumers
enable it exactly when ``REPRO_CACHE_DIR`` is set, see
:func:`default_cache`).  Entries are pickles written atomically
(temp file + rename) so concurrent writers on the same key are safe.
A confirmed-corrupt entry (fully read, fails to unpickle) is a miss
and is discarded; a read that merely *fails* (transient I/O error) is
a miss that leaves the entry alone, so a flaky read can never delete a
good entry out from under a concurrent reader.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

__all__ = [
    "ResultCache",
    "cache_dir",
    "default_cache",
    "code_version",
    "stable_digest",
]

_CODE_VERSION: str | None = None


def code_version() -> str:
    """Hash of every ``repro`` source file (memoised per process).

    Cache entries embed this, so rebuilding after *any* edit under
    ``src/repro`` misses cleanly instead of replaying stale physics.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        root = Path(__file__).resolve().parents[1]  # src/repro
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\x00")
            h.update(path.read_bytes())
            h.update(b"\x00")
        _CODE_VERSION = h.hexdigest()[:16]
    return _CODE_VERSION


def _hash_into(h: "hashlib._Hash", obj: Any) -> None:
    """Canonical recursive hashing of task payloads.

    Handles the payload vocabulary the experiment layer actually uses
    (primitives, containers, frozen dataclasses, numpy arrays and
    scalars); anything else falls back to its pickle bytes, which is
    deterministic within one interpreter version -- acceptable because
    the cache key also embeds :func:`code_version`.
    """
    import numpy as np

    if obj is None or isinstance(obj, (bool, int, float, complex, str, bytes)):
        h.update(f"{type(obj).__name__}:{obj!r}\x1e".encode())
    elif isinstance(obj, (list, tuple)):
        h.update(f"{type(obj).__name__}[{len(obj)}](\x1e".encode())
        for item in obj:
            _hash_into(h, item)
        h.update(b")\x1e")
    elif isinstance(obj, dict):
        h.update(f"dict[{len(obj)}](\x1e".encode())
        for key in sorted(obj, key=repr):
            _hash_into(h, key)
            _hash_into(h, obj[key])
        h.update(b")\x1e")
    elif isinstance(obj, np.ndarray):
        h.update(f"ndarray:{obj.dtype}:{obj.shape}\x1e".encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, np.generic):
        h.update(f"np:{obj.dtype}:{obj!r}\x1e".encode())
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        h.update(f"dc:{type(obj).__qualname__}(\x1e".encode())
        for f in dataclasses.fields(obj):
            h.update(f.name.encode())
            h.update(b"=")
            _hash_into(h, getattr(obj, f.name))
        h.update(b")\x1e")
    else:
        h.update(b"pickle:")
        h.update(pickle.dumps(obj, protocol=4))


def stable_digest(obj: Any) -> str:
    """Hex digest of an arbitrary task payload (see :func:`_hash_into`)."""
    h = hashlib.sha256()
    _hash_into(h, obj)
    return h.hexdigest()


def cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def default_cache() -> "ResultCache | None":
    """The opt-in default: a cache iff ``REPRO_CACHE_DIR`` is set.

    Keeping the implicit default *off* preserves exact pre-existing
    behaviour (and CI determinism); exporting ``REPRO_CACHE_DIR``
    turns on cross-run memoisation everywhere at once.
    """
    if os.environ.get("REPRO_CACHE_DIR"):
        return ResultCache(cache_dir())
    return None


class ResultCache:
    """Pickle store keyed by spec + workload + seed + code version.

    Counters (``hits``/``misses``/``stores``) accumulate over the
    cache's lifetime; :meth:`stats` snapshots them for reports.
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = Path(root) if root is not None else cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- keying ----------------------------------------------------------

    def entry_key(
        self,
        task_key: str,
        payload: Any = None,
        seed: int | None = None,
        version: str | None = None,
    ) -> str:
        """Content address of one task's result."""
        material = "\x1f".join(
            (
                task_key,
                stable_digest(payload),
                "" if seed is None else str(seed),
                version if version is not None else code_version(),
            )
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # -- store -----------------------------------------------------------

    def _read_blob(self, path: Path) -> bytes:
        """Read one entry's full bytes (separate for fault-injection tests)."""
        with open(path, "rb") as fh:
            return fh.read()

    def get(self, key: str) -> tuple[bool, Any]:
        """``(hit, value)``; corrupt entries are misses and are dropped.

        Only a *confirmed-corrupt* entry is unlinked: the blob was read
        in full and still failed to unpickle.  A read that fails partway
        (EIO, EINTR, a transient mount hiccup) is just a miss -- the
        entry on disk may be perfectly good, and writers are atomic
        (temp + rename), so a concurrent ``put`` can never leave a
        half-written blob at ``path`` for readers to destroy.
        """
        path = self._path(key)
        try:
            blob = self._read_blob(path)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except OSError:  # transient read failure: miss, keep the entry
            self.misses += 1
            return False, None
        try:
            value = pickle.loads(blob)
        except Exception:  # the full blob is corrupt: drop it
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Atomic write (temp + rename); unpicklable values are skipped."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            blob = pickle.dumps(value, protocol=4)
        except Exception:
            return  # caching is best-effort; the caller has the value
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
            self.stores += 1
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}
