"""Parallel experiment execution: deterministic fan-out + caching.

The execution layer (docs/architecture.md §10) runs independent
``(backend spec, workload, seed)`` tasks across worker processes with
serial-identical results:

- :mod:`repro.exec.seeding` -- SHA-256 per-task seed derivation
  (:func:`derive_seed`), the determinism contract's root;
- :mod:`repro.exec.cache` -- opt-in content-addressed result cache
  keyed by spec + workload + seed + code version;
- :mod:`repro.exec.runner` -- :class:`ExperimentRunner` with per-task
  timeout, bounded retry and structured :class:`TaskFailure` reporting.

Consumers: ``eval/sweeps.py`` and ``eval/table1.py`` (``jobs=``),
``verify/gate.py`` (oracle/golden/fuzz fan-out) and the CLI
(``--jobs``).
"""

from repro.exec.cache import ResultCache, code_version, default_cache, stable_digest
from repro.exec.runner import (
    ExecStats,
    ExperimentRunner,
    TaskFailure,
    TaskResult,
    TaskSpec,
)
from repro.exec.seeding import derive_seed, spawn_seeds

__all__ = [
    "ExperimentRunner",
    "ExecStats",
    "TaskSpec",
    "TaskResult",
    "TaskFailure",
    "ResultCache",
    "default_cache",
    "code_version",
    "stable_digest",
    "derive_seed",
    "spawn_seeds",
]
