"""Deterministic per-task seed derivation.

Every stochastic quantity in a fanned-out experiment must be a pure
function of ``(root_seed, task identity)`` -- never of scheduling
order, worker identity, process id or wall clock.  That is what makes
a parallel run *byte-identical* to the serial run at any ``--jobs``
level: each task derives its own seed from the run's root seed and its
stable task key, so the task draws the same random stream no matter
which worker executes it or when.

The derivation is SHA-256 over ``"<root_seed>\\x1f<task_key>"`` (the
unit-separator byte keeps ``(1, "2x")`` and ``(12, "x")`` distinct),
truncated to 63 bits so the result fits any consumer: ``random.Random``,
``numpy.random.default_rng``, C libraries expecting a non-negative
int64.  SHA-256 (rather than e.g. ``hash()``) makes the mapping stable
across processes, Python versions and ``PYTHONHASHSEED`` settings --
the whole point is that a cache entry or a golden file written on one
machine means the same thing on another.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping

__all__ = ["derive_seed", "spawn_seeds", "SEED_BITS"]

SEED_BITS = 63
"""Derived seeds are uniform in ``[0, 2**63)``: non-negative and
representable as an int64 everywhere."""


def derive_seed(root_seed: int, task_key: str) -> int:
    """Derive the seed for one task from the run's root seed.

    Deterministic, collision-resistant and order-free: the value
    depends only on ``(root_seed, task_key)``, so any scheduling of
    tasks over any number of workers reproduces the serial run's
    streams exactly.

    >>> derive_seed(0, "a") == derive_seed(0, "a")
    True
    >>> derive_seed(0, "a") != derive_seed(0, "b")
    True
    """
    if not isinstance(root_seed, int):
        raise TypeError(f"root_seed must be an int, got {type(root_seed).__name__}")
    if not isinstance(task_key, str):
        raise TypeError(f"task_key must be a str, got {type(task_key).__name__}")
    material = f"{root_seed}\x1f{task_key}".encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") >> (64 - SEED_BITS)


def spawn_seeds(root_seed: int, task_keys: Iterable[str]) -> Mapping[str, int]:
    """Derive seeds for a whole task set; keys must be unique."""
    out: dict[str, int] = {}
    for key in task_keys:
        if key in out:
            raise ValueError(f"duplicate task key {key!r}")
        out[key] = derive_seed(root_seed, key)
    return out
